#include "testkit/oracle.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/planner.h"
#include "lint/lint.h"
#include "model/cost_model.h"
#include "net/flow_sim.h"
#include "plan/estimator.h"
#include "policy/events.h"
#include "policy/policy.h"
#include "policy/runner.h"
#include "sim/pipeline_sim.h"
#include "straggler/situation.h"
#include "topology/cluster.h"
#include "whatif/whatif.h"

namespace malleus {
namespace testkit {

namespace {

// Exact-agreement tolerance: the differential pairs are required to be
// bit-identical modulo the final double rounding of independent call
// paths, so anything beyond a relative ulp-scale epsilon is a bug.
constexpr double kExactRelTol = 1e-9;

bool SameDouble(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

bool NearlyEqual(double a, double b, double rel_tol) {
  if (SameDouble(a, b)) return true;
  if (!std::isfinite(a) || !std::isfinite(b)) return false;
  return std::fabs(a - b) <= rel_tol * std::max({1.0, std::fabs(a),
                                                 std::fabs(b)});
}

// Compares two independent planning runs that must agree exactly: same
// success/failure, same failure status, or same plan signature and
// bitwise-identical estimates. Returns "" on agreement, else the diff.
std::string DiffPlanResults(const char* a_name,
                            const Result<core::PlanResult>& a,
                            const char* b_name,
                            const Result<core::PlanResult>& b) {
  if (a.ok() != b.ok()) {
    return StrFormat("%s %s but %s %s", a_name,
                     a.ok() ? "planned" : "failed", b_name,
                     b.ok() ? "planned" : "failed");
  }
  if (!a.ok()) {
    if (a.status() == b.status()) return "";
    return StrFormat("%s failed with \"%s\" but %s with \"%s\"", a_name,
                     a.status().ToString().c_str(), b_name,
                     b.status().ToString().c_str());
  }
  if (a->plan.Signature() != b->plan.Signature()) {
    return StrFormat("plan signature %s=%s vs %s=%s", a_name,
                     a->plan.Signature().c_str(), b_name,
                     b->plan.Signature().c_str());
  }
  if (a->chosen_tp != b->chosen_tp) {
    return StrFormat("chosen_tp %s=%d vs %s=%d", a_name, a->chosen_tp,
                     b_name, b->chosen_tp);
  }
  if (!SameDouble(a->estimated_seconds, b->estimated_seconds)) {
    return StrFormat("estimated_seconds %s=%.17g vs %s=%.17g", a_name,
                     a->estimated_seconds, b_name, b->estimated_seconds);
  }
  if (!SameDouble(a->estimated_full_seconds, b->estimated_full_seconds)) {
    return StrFormat("estimated_full_seconds %s=%.17g vs %s=%.17g", a_name,
                     a->estimated_full_seconds, b_name,
                     b->estimated_full_seconds);
  }
  return "";
}

// Collects the oracle bookkeeping so each oracle body reads linearly.
struct OracleContext {
  OracleOutcome* out;

  void Ran(const char* oracle) { out->oracles_run.push_back(oracle); }
  void Violate(const char* oracle, std::string message) {
    out->violations.push_back(Violation{oracle, std::move(message)});
  }
};

}  // namespace

OracleOutcome RunOracles(const scenario::ScenarioSpec& spec,
                         const OracleOptions& options) {
  OracleOutcome out;
  OracleContext ctx{&out};

  Result<scenario::ResolvedScenario> resolved =
      scenario::ResolveScenario(spec);
  if (!resolved.ok()) {
    // Semantically invalid scenarios (a generator-probed boundary) have no
    // planner behavior to check; rejecting them cleanly IS the pass.
    out.error = resolved.status().ToString();
    return out;
  }
  out.resolved = true;
  const topo::ClusterSpec& cluster = resolved->cluster;

  // One situation per run: the custom overlay when present, else the first
  // trace phase, else all-healthy. (MixSeed spreads the generator over the
  // other combinations across runs.)
  straggler::Situation situation(cluster.num_gpus());
  if (resolved->has_overlay) {
    situation = resolved->overlay;
  } else if (!resolved->trace.empty()) {
    Result<straggler::Situation> canonical = straggler::Situation::Canonical(
        cluster, resolved->trace.front().id);
    if (!canonical.ok()) {
      out.error = canonical.status().ToString();
      return out;
    }
    situation = *canonical;
  }

  const model::CostModel cost(resolved->spec, cluster.gpu());

  // ----- differential.planner-threads / differential.solve-cache --------
  //
  // Five planning runs that must agree exactly (planner.h's bit-identity
  // contract): serial, 4 workers, cache disabled, cold cache, and a warm
  // re-plan on the serial planner (replaying its now-populated memo).
  core::PlannerOptions serial_opts;
  serial_opts.num_threads = 1;
  core::Planner planner(cluster, cost);
  const Result<core::PlanResult> base =
      planner.Plan(situation, spec.batch, serial_opts);

  {
    ctx.Ran("differential.planner-threads");
    core::PlannerOptions threaded_opts = serial_opts;
    threaded_opts.num_threads = 4;
    core::Planner threaded(cluster, cost);
    const Result<core::PlanResult> parallel =
        threaded.Plan(situation, spec.batch, threaded_opts);
    std::string diff =
        DiffPlanResults("threads=1", base, "threads=4", parallel);
    if (!diff.empty()) ctx.Violate("differential.planner-threads", diff);
  }
  {
    ctx.Ran("differential.solve-cache");
    core::PlannerOptions nocache_opts = serial_opts;
    nocache_opts.enable_solve_cache = false;
    core::Planner uncached(cluster, cost);
    const Result<core::PlanResult> nocache =
        uncached.Plan(situation, spec.batch, nocache_opts);
    std::string diff = DiffPlanResults("cache=off", nocache, "cache=cold",
                                       base);
    if (diff.empty()) {
      const Result<core::PlanResult> warm =
          planner.Plan(situation, spec.batch, serial_opts);
      diff = DiffPlanResults("cache=cold", base, "cache=warm", warm);
    }
    if (!diff.empty()) ctx.Violate("differential.solve-cache", diff);
  }

  if (!base.ok()) {
    // Unplannable (e.g. the model cannot fit): the determinism of the
    // failure was checked above; the plan-shaped oracles have no subject.
    out.error = base.status().ToString();
    return out;
  }
  out.planned = true;
  const plan::ParallelPlan& p = base->plan;
  const int dp = p.dp_degree();

  // ----- differential.net-model -----------------------------------------
  //
  // The flow model only ever ADDS contention to the analytic closed form,
  // and reproduces it exactly when no two grad-sync flows share a
  // directional fabric link (all ring flows start at t=0, so static
  // crossing counts decide sharing).
  {
    ctx.Ran("differential.net-model");
    const double analytic = plan::EstimateGradSyncSeconds(
        p, cost, cluster, net::NetModel::kAnalytic);
    const double flow = plan::EstimateGradSyncSeconds(
        p, cost, cluster, net::NetModel::kFlow);
    if (flow < analytic * (1.0 - kExactRelTol)) {
      ctx.Violate("differential.net-model",
                  StrFormat("flow grad-sync %.17g s beats the analytic "
                            "lower bound %.17g s",
                            flow, analytic));
    }
    const net::Fabric fabric(cluster);
    std::vector<int> crossings(fabric.num_links(), 0);
    bool contended = false;
    for (const plan::GradSyncRing& ring :
         plan::CollectGradSyncRings(p, cost, cluster)) {
      if (ring.peers.size() < 2) continue;
      for (size_t i = 0; i < ring.peers.size(); ++i) {
        const topo::GpuId src = ring.peers[i];
        const topo::GpuId dst = ring.peers[(i + 1) % ring.peers.size()];
        for (net::LinkId link : fabric.Route(src, dst)) {
          if (++crossings[link] > 1) contended = true;
        }
      }
    }
    if (!contended && !NearlyEqual(flow, analytic, kExactRelTol)) {
      ctx.Violate("differential.net-model",
                  StrFormat("uncontended rings: flow %.17g s != analytic "
                            "%.17g s",
                            flow, analytic));
    }
  }

  // ----- differential.validate-lint -------------------------------------
  //
  // ParallelPlan::Validate (fail-fast) and the lint engine's error-level
  // verdict are two routes through the same structural checks; they must
  // agree on the chosen plan and on deterministically broken mutants.
  {
    ctx.Ran("differential.validate-lint");
    std::vector<std::pair<const char*, plan::ParallelPlan>> variants;
    variants.emplace_back("chosen plan", p);
    if (!p.pipelines.empty() && !p.pipelines[0].stages.empty()) {
      plan::ParallelPlan extra_layer = p;
      extra_layer.pipelines[0].stages[0].num_layers += 1;
      variants.emplace_back("mutant(+1 layer)", std::move(extra_layer));
      plan::ParallelPlan reused_gpu = p;
      plan::TpGroup& group = reused_gpu.pipelines[0].stages[0].group;
      group.gpus.push_back(group.gpus.front());
      variants.emplace_back("mutant(duplicated GPU)", std::move(reused_gpu));
    }
    plan::ParallelPlan extra_batch = p;
    extra_batch.global_batch += 1;
    variants.emplace_back("mutant(+1 batch)", std::move(extra_batch));
    for (const auto& [label, variant] : variants) {
      const bool validate_ok = variant.Validate(cluster, cost).ok();
      lint::DiagnosticSink sink;
      lint::LintPlan(variant, cluster, cost, &situation, &sink);
      const bool lint_ok = !sink.HasErrors();
      if (validate_ok != lint_ok) {
        ctx.Violate(
            "differential.validate-lint",
            StrFormat("%s: Validate says %s but lint says %s", label,
                      validate_ok ? "valid" : "invalid",
                      lint_ok ? "no errors" : "errors"));
      }
    }
  }

  // The metamorphic straggler oracles worsen the first active GPU; the
  // planner never schedules failed GPUs, but guard anyway.
  topo::GpuId worsen_target = -1;
  for (topo::GpuId g : p.ActiveGpus()) {
    if (!situation.IsFailed(g)) {
      worsen_target = g;
      break;
    }
  }

  // ----- metamorphic.straggler-monotone-plan ----------------------------
  //
  // The closed-form estimate is pointwise monotone in every rate (y = rho
  // * max{x} feeds positive products, sums and maxes only), so worsening a
  // rate can never improve a FIXED plan. Exact, no heuristic slack.
  double base_step_seconds = 0.0;
  if (worsen_target >= 0) {
    ctx.Ran("metamorphic.straggler-monotone-plan");
    straggler::Situation worse = situation;
    worse.SetRate(worsen_target, situation.rate(worsen_target) * 1.5);
    base_step_seconds = plan::EstimateStep(p, cost, situation).step_seconds;
    double worse_step_seconds =
        plan::EstimateStep(p, cost, worse).step_seconds;
    if (options.inject_perturb_estimate) worse_step_seconds *= 0.5;
    if (worse_step_seconds < base_step_seconds * (1.0 - 1e-12)) {
      ctx.Violate("metamorphic.straggler-monotone-plan",
                  StrFormat("worsening GPU %d's rate x1.5 improved the "
                            "fixed-plan estimate: %.17g s -> %.17g s",
                            worsen_target, base_step_seconds,
                            worse_step_seconds));
    }

    // ----- metamorphic.straggler-monotone-replan ------------------------
    //
    // Feasibility is rate-independent (the memory and shape constraints
    // never see rates), so the worse situation must still plan; and the
    // re-planned plan, held fixed, must obey exact estimate monotonicity
    // in the worsened rate. The re-planned OPTIMUM is deliberately not
    // compared against the base optimum: the grouping candidates move
    // with the rate vector, so the heuristic search routinely lands
    // 10-20% away in either direction — honest suboptimality, not a bug.
    ctx.Ran("metamorphic.straggler-monotone-replan");
    core::Planner replanner(cluster, cost);
    const Result<core::PlanResult> replanned =
        replanner.Plan(worse, spec.batch, serial_opts);
    if (!replanned.ok()) {
      ctx.Violate("metamorphic.straggler-monotone-replan",
                  StrFormat("worsening GPU %d's rate x1.5 made planning "
                            "fail: %s",
                            worsen_target,
                            replanned.status().ToString().c_str()));
    } else {
      const double replan_under_worse =
          plan::EstimateStep(replanned->plan, cost, worse).step_seconds;
      const double replan_under_base =
          plan::EstimateStep(replanned->plan, cost, situation).step_seconds;
      if (replan_under_worse < replan_under_base * (1.0 - 1e-12)) {
        ctx.Violate(
            "metamorphic.straggler-monotone-replan",
            StrFormat("the re-planned plan estimates faster under the "
                      "worse rates (GPU %d x1.5): %.17g s -> %.17g s",
                      worsen_target, replan_under_base,
                      replan_under_worse));
      }
    }
  }

  // ----- metamorphic.standby-monotone -----------------------------------
  //
  // One extra node must keep the cluster plannable (more resources never
  // remove a feasible shape), and a node of FAILED newcomers must be
  // equivalent to no node at all: grouping drops failed GPUs (and then
  // empty nodes) before any search runs, so the chosen estimates must
  // match the base cluster bitwise. Only the standby list legitimately
  // differs (it absorbs the dead newcomers), so plan signatures are not
  // compared. The healthy-newcomer estimate is deliberately not compared
  // against the base: the planner uses every healthy GPU, and on
  // comm-dominated shapes more GPUs can honestly cost time.
  {
    ctx.Ran("metamorphic.standby-monotone");
    const topo::ClusterSpec bigger(cluster.num_nodes() + 1,
                                   cluster.gpus_per_node(), cluster.gpu(),
                                   cluster.link());
    straggler::Situation extended(bigger.num_gpus());
    for (topo::GpuId g = 0; g < cluster.num_gpus(); ++g) {
      extended.SetRate(g, situation.rate(g));
    }
    core::Planner grown(bigger, cost);
    const Result<core::PlanResult> grown_plan =
        grown.Plan(extended, spec.batch, serial_opts);
    if (!grown_plan.ok()) {
      ctx.Violate("metamorphic.standby-monotone",
                  StrFormat("adding a healthy node made planning fail: %s",
                            grown_plan.status().ToString().c_str()));
    }

    straggler::Situation dead = extended;
    for (topo::GpuId g = cluster.num_gpus(); g < bigger.num_gpus(); ++g) {
      dead.Fail(g);
    }
    core::Planner grown_dead(bigger, cost);
    const Result<core::PlanResult> dead_plan =
        grown_dead.Plan(dead, spec.batch, serial_opts);
    if (!dead_plan.ok()) {
      ctx.Violate("metamorphic.standby-monotone",
                  StrFormat("adding a node of failed GPUs made planning "
                            "fail: %s",
                            dead_plan.status().ToString().c_str()));
    } else if (dead_plan->chosen_tp != base->chosen_tp ||
               !SameDouble(dead_plan->estimated_seconds,
                           base->estimated_seconds) ||
               !SameDouble(dead_plan->estimated_full_seconds,
                           base->estimated_full_seconds)) {
      ctx.Violate(
          "metamorphic.standby-monotone",
          StrFormat("a node of failed GPUs changed the plan: tp %d -> %d, "
                    "estimate %.17g s -> %.17g s",
                    base->chosen_tp, dead_plan->chosen_tp,
                    base->estimated_full_seconds,
                    dead_plan->estimated_full_seconds));
    }
  }

  // ----- metamorphic.bandwidth-scaling ----------------------------------
  //
  // With latencies zeroed the grad-sync estimate is pure bytes/bandwidth,
  // so doubling every link capacity must exactly halve it — under both
  // net models (max–min rates scale linearly with capacities).
  {
    ctx.Ran("metamorphic.bandwidth-scaling");
    topo::LinkSpec zero_lat = cluster.link();
    zero_lat.intra_node_latency_s = 0.0;
    zero_lat.inter_node_latency_s = 0.0;
    topo::LinkSpec doubled = zero_lat;
    doubled.intra_node_gbps *= 2.0;
    doubled.inter_node_gbps *= 2.0;
    const topo::ClusterSpec c_base(cluster.num_nodes(),
                                   cluster.gpus_per_node(), cluster.gpu(),
                                   zero_lat);
    const topo::ClusterSpec c_fast(cluster.num_nodes(),
                                   cluster.gpus_per_node(), cluster.gpu(),
                                   doubled);
    for (net::NetModel m :
         {net::NetModel::kAnalytic, net::NetModel::kFlow}) {
      const double t_base =
          plan::EstimateGradSyncSeconds(p, cost, c_base, m);
      const double t_fast =
          plan::EstimateGradSyncSeconds(p, cost, c_fast, m);
      if (!NearlyEqual(t_fast, t_base / 2.0, kExactRelTol)) {
        ctx.Violate("metamorphic.bandwidth-scaling",
                    StrFormat("%s: doubling bandwidths scaled grad-sync "
                              "%.17g s -> %.17g s (expected %.17g s)",
                              net::NetModelName(m), t_base, t_fast,
                              t_base / 2.0));
      }
    }
  }

  // ----- whatif.remove-straggler-monotone ---------------------------------
  //
  // The counterfactual-grid oracle: replaying the FIXED chosen plan with
  // one injected straggler healed must never attribute a negative span —
  // i.e. the replayed step cannot get slower when a rate improves. Exact
  // under the analytic model (the 1F1B event DAG's longest path is
  // monotone in task durations, and isolated transfer times do not depend
  // on rates); the flow model is deliberately excluded because max–min
  // bandwidth sharing is not provably monotone.
  {
    const std::vector<topo::GpuId> stragglers = situation.Stragglers();
    if (!stragglers.empty()) {
      ctx.Ran("whatif.remove-straggler-monotone");
      const Result<whatif::ReplayResult> baseline_replay =
          whatif::ReplayPlanStep(cluster, cost, p, situation,
                                 net::NetModel::kAnalytic, spec.seed);
      if (!baseline_replay.ok()) {
        ctx.Violate("whatif.remove-straggler-monotone",
                    StrFormat("baseline replay failed: %s",
                              baseline_replay.status().ToString().c_str()));
      } else {
        for (topo::GpuId g : stragglers) {
          straggler::Situation healed = situation;
          healed.SetRate(g, 1.0);
          const Result<whatif::ReplayResult> replay =
              whatif::ReplayPlanStep(cluster, cost, p, healed,
                                     net::NetModel::kAnalytic, spec.seed);
          if (!replay.ok()) {
            ctx.Violate("whatif.remove-straggler-monotone",
                        StrFormat("replay with GPU %d healed failed: %s", g,
                                  replay.status().ToString().c_str()));
            continue;
          }
          if (replay->step_seconds >
              baseline_replay->step_seconds * (1.0 + kExactRelTol)) {
            ctx.Violate(
                "whatif.remove-straggler-monotone",
                StrFormat("healing straggler GPU %d SLOWED the replayed "
                          "step: %.17g s -> %.17g s",
                          g, baseline_replay->step_seconds,
                          replay->step_seconds));
          }
        }
      }
    }
  }

  // ----- sim.invariants --------------------------------------------------
  //
  // Noise-free simulation of the chosen plan under both net models: spans
  // finite and nonnegative, the step dominates every pipeline, and the
  // contention-aware model can only be slower than the isolated one (a
  // flow never exceeds its isolated rate, and 1F1B event times are
  // monotone in task durations).
  {
    ctx.Ran("sim.invariants");
    double step_by_model[2] = {0.0, 0.0};
    bool sim_ok[2] = {false, false};
    int index = 0;
    for (net::NetModel m :
         {net::NetModel::kAnalytic, net::NetModel::kFlow}) {
      sim::SimOptions sim_opts;
      sim_opts.timing_noise_stddev = 0.0;
      sim_opts.net_model = m;
      Rng rng(0);
      const Result<sim::StepResult> step =
          sim::SimulateStep(cluster, cost, p, situation, sim_opts, &rng);
      const char* name = net::NetModelName(m);
      if (!step.ok()) {
        ctx.Violate("sim.invariants",
                    StrFormat("%s: simulating the validated plan failed: %s",
                              name, step.status().ToString().c_str()));
        ++index;
        continue;
      }
      sim_ok[index] = true;
      step_by_model[index] = step->step_seconds;
      if (!std::isfinite(step->step_seconds) || step->step_seconds < 0.0) {
        ctx.Violate("sim.invariants",
                    StrFormat("%s: step time %.17g s is not finite and "
                              "nonnegative",
                              name, step->step_seconds));
      }
      double max_pipeline = 0.0;
      for (size_t i = 0; i < step->pipeline_seconds.size(); ++i) {
        const double t = step->pipeline_seconds[i];
        if (!std::isfinite(t) || t < 0.0) {
          ctx.Violate("sim.invariants",
                      StrFormat("%s: pipeline %zu span %.17g s is not "
                                "finite and nonnegative",
                                name, i, t));
        }
        max_pipeline = std::max(max_pipeline, t);
      }
      if (step->step_seconds <
          max_pipeline * (1.0 - kExactRelTol)) {
        ctx.Violate("sim.invariants",
                    StrFormat("%s: step %.17g s ends before its slowest "
                              "pipeline %.17g s",
                              name, step->step_seconds, max_pipeline));
      }
      if (!std::isfinite(step->grad_sync_seconds) ||
          step->grad_sync_seconds < 0.0) {
        ctx.Violate("sim.invariants",
                    StrFormat("%s: grad-sync span %.17g s is not finite "
                              "and nonnegative",
                              name, step->grad_sync_seconds));
      }
      ++index;
    }
    if (sim_ok[0] && sim_ok[1] &&
        step_by_model[1] < step_by_model[0] * (1.0 - kExactRelTol)) {
      ctx.Violate("sim.invariants",
                  StrFormat("flow step %.17g s beats the analytic step "
                            "%.17g s",
                            step_by_model[1], step_by_model[0]));
    }
  }

  // ----- differential.sim-replay -----------------------------------------
  //
  // The NOISY simulator is still a pure function of its Rng: replaying the
  // same seed under the configured net model must reproduce the step
  // bit-for-bit (this is what makes every fuzz report hashable).
  {
    ctx.Ran("differential.sim-replay");
    sim::SimOptions sim_opts;
    sim_opts.net_model = options.sim_net_model;
    double replay_steps[2] = {0.0, 0.0};
    bool replay_ok[2] = {false, false};
    for (int attempt = 0; attempt < 2; ++attempt) {
      Rng rng(spec.seed);
      const Result<sim::StepResult> step =
          sim::SimulateStep(cluster, cost, p, situation, sim_opts, &rng);
      replay_ok[attempt] = step.ok();
      if (step.ok()) replay_steps[attempt] = step->step_seconds;
    }
    if (replay_ok[0] != replay_ok[1] ||
        !SameDouble(replay_steps[0], replay_steps[1])) {
      ctx.Violate("differential.sim-replay",
                  StrFormat("%s: same Rng seed simulated %.17g s then "
                            "%.17g s",
                            net::NetModelName(options.sim_net_model),
                            replay_steps[0], replay_steps[1]));
    }
  }

  // ----- sim.event-graph --------------------------------------------------
  {
    ctx.Ran("sim.event-graph");
    lint::DiagnosticSink sink;
    lint::LintEventGraph(p, &sink);
    if (!sink.empty()) {
      ctx.Violate("sim.event-graph",
                  StrFormat("1F1B schedule lint: %s",
                            sink.diagnostics().front().ToString().c_str()));
    }
  }

  // ----- net.flow-conservation -------------------------------------------
  //
  // Replay the plan's grad-sync lowering (exactly as the flow estimator
  // submits it) and audit: FlowSim must move precisely the submitted
  // bytes, with no negative per-link volume and no overcommitted link.
  {
    ctx.Ran("net.flow-conservation");
    const net::Fabric fabric(cluster);
    net::FlowSim fs(fabric);
    double expected_bytes = 0.0;
    for (const plan::GradSyncRing& ring :
         plan::CollectGradSyncRings(p, cost, cluster)) {
      const double bytes_per_hop =
          ring.bytes_per_gpu * (dp - 1.0) / std::max(dp, 1);
      const std::vector<int64_t> ids =
          net::SubmitRing(&fs, ring.peers, bytes_per_hop,
                          /*start_seconds=*/0.0,
                          2.0 * dp * ring.hop_latency);
      expected_bytes += static_cast<double>(ids.size()) * bytes_per_hop;
    }
    fs.Run();
    const lint::FlowAudit audit = lint::AuditFlowSim(fs);
    lint::DiagnosticSink sink;
    lint::LintFlowConservation(audit, expected_bytes, /*rel_tolerance=*/1e-6,
                               &sink);
    if (!sink.empty()) {
      ctx.Violate("net.flow-conservation",
                  StrFormat("grad-sync flow audit: %s",
                            sink.diagnostics().front().ToString().c_str()));
    }
  }

  // ----- differential.flowsim-incremental --------------------------------
  //
  // The incremental max–min engine (component-restricted water-filling +
  // indexed arrival queue) must reproduce the legacy from-scratch engine
  // bit for bit. The workload is the plan's grad-sync lowering twice: once
  // as the estimator submits it (all rings at t=0) and once with each
  // ring's start staggered, so arrivals and drains genuinely interleave
  // and the incremental engine's dirty-component tracking is exercised
  // across many membership changes.
  {
    ctx.Ran("differential.flowsim-incremental");
    const net::Fabric fabric(cluster);
    net::FlowSim inc(fabric, net::FlowSimMode::kIncremental);
    net::FlowSim leg(fabric, net::FlowSimMode::kLegacy);
    const std::vector<plan::GradSyncRing> rings =
        plan::CollectGradSyncRings(p, cost, cluster);
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t r = 0; r < rings.size(); ++r) {
        const plan::GradSyncRing& ring = rings[r];
        const double bytes_per_hop =
            ring.bytes_per_gpu * (dp - 1.0) / std::max(dp, 1);
        const double start =
            pass == 0 ? 0.0 : 1e-4 * static_cast<double>(r + 1);
        net::SubmitRing(&inc, ring.peers, bytes_per_hop, start,
                        2.0 * dp * ring.hop_latency);
        net::SubmitRing(&leg, ring.peers, bytes_per_hop, start,
                        2.0 * dp * ring.hop_latency);
      }
    }
    inc.Run();
    leg.Run();
    std::string diff;
    if (!SameDouble(inc.MakespanSeconds(), leg.MakespanSeconds())) {
      diff = StrFormat("makespan incremental=%.17g vs legacy=%.17g",
                       inc.MakespanSeconds(), leg.MakespanSeconds());
    }
    for (size_t i = 0; diff.empty() && i < inc.outcomes().size(); ++i) {
      if (!SameDouble(inc.outcomes()[i].end_seconds,
                      leg.outcomes()[i].end_seconds) ||
          !SameDouble(inc.outcomes()[i].seconds, leg.outcomes()[i].seconds)) {
        diff = StrFormat("flow %zu end incremental=%.17g vs legacy=%.17g", i,
                         inc.outcomes()[i].end_seconds,
                         leg.outcomes()[i].end_seconds);
      }
    }
    for (int l = 0; diff.empty() && l < fabric.num_links(); ++l) {
      const net::LinkUsage& a = inc.link_usage()[l];
      const net::LinkUsage& b = leg.link_usage()[l];
      if (!SameDouble(a.bytes, b.bytes) ||
          !SameDouble(a.peak_utilization, b.peak_utilization)) {
        diff = StrFormat("link %s bytes/peak incremental=%.17g/%.17g vs "
                         "legacy=%.17g/%.17g",
                         fabric.link(l).name.c_str(), a.bytes,
                         a.peak_utilization, b.bytes, b.peak_utilization);
      }
    }
    if (!diff.empty()) {
      ctx.Violate("differential.flowsim-incremental", diff);
    }
  }

  // ----- dynamic.engine-state-valid / dynamic.goodput-conservation --------
  //
  // Scenarios carrying a `dynamic = { ... }` block run the full policy
  // engine (adaptive selector — the one that actually switches between all
  // five actions) over the generated event trace and audit two invariants:
  //
  //   engine-state-valid     after EVERY applied event the installed plan
  //                          passes Validate and schedules work on no
  //                          failed GPU, whatever action was chosen
  //   goodput-conservation   wall time is exactly training + transition
  //                          (no seconds invented or dropped across policy
  //                          switches), goodput is finite and nonnegative,
  //                          and a run that did not stop early covers the
  //                          whole trace
  //
  // A dynamic run that cannot even start (no initial plan under the
  // overlay situation) is a skip, like an unplannable base scenario.
  if (spec.dynamic.enabled) {
    const policy::EventTrace trace = policy::GenerateEventTrace(
        cluster, spec.dynamic,
        spec.dynamic.seed != 0 ? spec.dynamic.seed : spec.seed);
    Result<std::unique_ptr<policy::PolicySelector>> selector =
        policy::MakeSelector("adaptive");
    policy::DynamicRunOptions dyn_options;
    dyn_options.planner.num_threads = 1;
    const Result<policy::DynamicRunResult> run =
        selector.ok() ? policy::RunDynamic(cluster, cost, situation, trace,
                                           spec.batch, **selector,
                                           dyn_options)
                      : selector.status();
    if (run.ok()) {
      ctx.Ran("dynamic.engine-state-valid");
      for (const policy::EventAudit& audit : run->audits) {
        if (!audit.plan_valid || audit.uses_failed_gpu) {
          ctx.Violate(
              "dynamic.engine-state-valid",
              StrFormat("after %s at iteration %lld, action %s left %s",
                        policy::EventKindName(audit.kind),
                        static_cast<long long>(audit.iteration),
                        policy::PolicyActionName(audit.action),
                        audit.uses_failed_gpu
                            ? "a failed GPU scheduled"
                            : "an invalid plan installed"));
          break;
        }
      }
      ctx.Ran("dynamic.goodput-conservation");
      if (!SameDouble(run->wall_seconds,
                      run->training_seconds + run->transition_seconds)) {
        ctx.Violate("dynamic.goodput-conservation",
                    StrFormat("wall %.17g s != training %.17g s + "
                              "transition %.17g s",
                              run->wall_seconds, run->training_seconds,
                              run->transition_seconds));
      }
      if (!std::isfinite(run->goodput) || run->goodput < 0.0) {
        ctx.Violate("dynamic.goodput-conservation",
                    StrFormat("goodput %.17g is not finite and nonnegative",
                              run->goodput));
      }
      if (run->stop_reason.empty() &&
          run->iterations_run != trace.iterations) {
        ctx.Violate("dynamic.goodput-conservation",
                    StrFormat("run without a stop reason covered %lld of "
                              "%lld iterations",
                              static_cast<long long>(run->iterations_run),
                              static_cast<long long>(trace.iterations)));
      }
    }
  }

  return out;
}

}  // namespace testkit
}  // namespace malleus
