// Golden-trace snapshots: a deterministic text rendering of what the
// planner decides — and what the closed forms and simulator predict — for
// a shipped example scenario, suitable for checking into tests/golden/.
//
// A snapshot covers every situation the scenario implies (the custom
// straggler overlay, or each distinct trace phase in order) with one
// core::PlanResultSnapshot block each. Scenarios with a `dynamic = {...}`
// block additionally pin the generated event trace and one policy-engine
// run per registered selector (malleus::policy), so the trace generator,
// the action pricing and every selector's decisions are golden-tested too. Wall-clock timings are excluded by
// construction and the net model is recorded explicitly for both analytic
// and flow, so the bytes are identical across machines, thread counts and
// MALLEUS_NET_MODEL settings; any diff against the checked-in golden is a
// real behavior change (or a deliberate one, refreshed via
// `malleus_golden --update-golden`).

#ifndef MALLEUS_TESTKIT_GOLDEN_H_
#define MALLEUS_TESTKIT_GOLDEN_H_

#include <string>

#include "common/result.h"
#include "scenario/scenario.h"

namespace malleus {
namespace testkit {

/// Renders the golden snapshot of `spec`. Fails only when the scenario
/// does not resolve (unknown model/phase, bad GPU ids); an infeasible
/// planning problem renders as a "plan failed:" block instead, so golden
/// files also pin failure behavior.
Result<std::string> RenderGoldenSnapshot(const scenario::ScenarioSpec& spec);

}  // namespace testkit
}  // namespace malleus

#endif  // MALLEUS_TESTKIT_GOLDEN_H_
