#include "testkit/golden.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "core/planner.h"
#include "core/snapshot.h"
#include "model/cost_model.h"
#include "policy/events.h"
#include "policy/policy.h"
#include "policy/runner.h"
#include "straggler/situation.h"

namespace malleus {
namespace testkit {

Result<std::string> RenderGoldenSnapshot(
    const scenario::ScenarioSpec& spec) {
  Result<scenario::ResolvedScenario> resolved =
      scenario::ResolveScenario(spec);
  if (!resolved.ok()) return resolved.status();
  const topo::ClusterSpec& cluster = resolved->cluster;
  const model::CostModel cost(resolved->spec, cluster.gpu());

  // The situations the scenario implies, labeled and deduplicated in
  // first-appearance order (re-planning an already-seen phase would only
  // duplicate bytes). Shared with the what-if engine so both enumerate
  // identically.
  Result<std::vector<scenario::LabeledSituation>> situations =
      scenario::ImpliedSituations(*resolved);
  if (!situations.ok()) return situations.status();

  std::string out;
  out += "# malleus golden snapshot (regenerate: malleus_golden "
         "--update-golden)\n";
  out += "== scenario ==\n";
  out += scenario::SerializeScenario(spec);
  const core::Planner planner(cluster, cost);
  core::PlannerOptions options;
  options.num_threads = 1;
  for (const auto& [label, situation] : *situations) {
    out += StrFormat("== situation %s ==\n", label.c_str());
    const Result<core::PlanResult> result =
        planner.Plan(situation, spec.batch, options);
    if (!result.ok()) {
      out += StrFormat("plan failed: %s\n",
                       result.status().ToString().c_str());
      continue;
    }
    out += core::PlanResultSnapshot(*result, cluster, cost, situation);
  }

  // Dynamic scenarios additionally pin the generated event trace and one
  // full policy run per registered selector, so a drift in the trace
  // generator, the action pricing, or any selector's choices shows up as
  // a byte diff. Wall-clock never enters: every number below is derived
  // from the deterministic noise-free simulator and fixed cost constants.
  if (spec.dynamic.enabled) {
    const policy::EventTrace trace = policy::GenerateEventTrace(
        cluster, spec.dynamic,
        spec.dynamic.seed != 0 ? spec.dynamic.seed : spec.seed);
    out += "== dynamic trace ==\n";
    out += StrFormat("iterations %lld, events %zu\n",
                     static_cast<long long>(trace.iterations),
                     trace.events.size());
    constexpr size_t kMaxEventLines = 200;
    for (size_t i = 0; i < trace.events.size() && i < kMaxEventLines; ++i) {
      out += trace.events[i].ToString() + "\n";
    }
    if (trace.events.size() > kMaxEventLines) {
      out += StrFormat("... (%zu more events)\n",
                       trace.events.size() - kMaxEventLines);
    }

    straggler::Situation healthy(cluster.num_gpus());
    for (const std::string& name : policy::SelectorNames()) {
      out += StrFormat("== dynamic policy %s ==\n", name.c_str());
      Result<std::unique_ptr<policy::PolicySelector>> selector =
          policy::MakeSelector(name);
      if (!selector.ok()) {
        out += StrFormat("selector failed: %s\n",
                         selector.status().ToString().c_str());
        continue;
      }
      policy::DynamicRunOptions dyn_options;
      dyn_options.planner.num_threads = 1;
      const Result<policy::DynamicRunResult> run = policy::RunDynamic(
          cluster, cost, healthy, trace, spec.batch, **selector,
          dyn_options);
      if (!run.ok()) {
        out += StrFormat("dynamic run failed: %s\n",
                         run.status().ToString().c_str());
        continue;
      }
      out += StrFormat("iterations run     : %lld of %lld\n",
                       static_cast<long long>(run->iterations_run),
                       static_cast<long long>(run->trace_iterations));
      out += StrFormat("events applied     : %d\n", run->events_applied);
      std::string actions;
      for (int a = 0; a < policy::kNumPolicyActions; ++a) {
        if (a > 0) actions += ", ";
        actions += StrFormat(
            "%s %d",
            policy::PolicyActionName(static_cast<policy::PolicyAction>(a)),
            run->action_counts[a]);
      }
      out += StrFormat("actions            : %s\n", actions.c_str());
      out += StrFormat("training seconds   : %.17g\n", run->training_seconds);
      out += StrFormat("transition seconds : %.17g\n",
                       run->transition_seconds);
      out += StrFormat("wall seconds       : %.17g\n", run->wall_seconds);
      out += StrFormat("goodput            : %.17g\n", run->goodput);
      if (!run->stop_reason.empty()) {
        out += StrFormat("stopped early      : %s\n",
                         run->stop_reason.c_str());
      }
    }
  }
  return out;
}

}  // namespace testkit
}  // namespace malleus
