#include "testkit/golden.h"

#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "core/planner.h"
#include "core/snapshot.h"
#include "model/cost_model.h"
#include "straggler/situation.h"

namespace malleus {
namespace testkit {

Result<std::string> RenderGoldenSnapshot(
    const scenario::ScenarioSpec& spec) {
  Result<scenario::ResolvedScenario> resolved =
      scenario::ResolveScenario(spec);
  if (!resolved.ok()) return resolved.status();
  const topo::ClusterSpec& cluster = resolved->cluster;
  const model::CostModel cost(resolved->spec, cluster.gpu());

  // The situations the scenario implies, labeled and deduplicated in
  // first-appearance order (re-planning an already-seen phase would only
  // duplicate bytes). Shared with the what-if engine so both enumerate
  // identically.
  Result<std::vector<scenario::LabeledSituation>> situations =
      scenario::ImpliedSituations(*resolved);
  if (!situations.ok()) return situations.status();

  std::string out;
  out += "# malleus golden snapshot (regenerate: malleus_golden "
         "--update-golden)\n";
  out += "== scenario ==\n";
  out += scenario::SerializeScenario(spec);
  const core::Planner planner(cluster, cost);
  core::PlannerOptions options;
  options.num_threads = 1;
  for (const auto& [label, situation] : *situations) {
    out += StrFormat("== situation %s ==\n", label.c_str());
    const Result<core::PlanResult> result =
        planner.Plan(situation, spec.batch, options);
    if (!result.ok()) {
      out += StrFormat("plan failed: %s\n",
                       result.status().ToString().c_str());
      continue;
    }
    out += core::PlanResultSnapshot(*result, cluster, cost, situation);
  }
  return out;
}

}  // namespace testkit
}  // namespace malleus
