#include "testkit/golden.h"

#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "core/planner.h"
#include "core/snapshot.h"
#include "model/cost_model.h"
#include "straggler/situation.h"

namespace malleus {
namespace testkit {

Result<std::string> RenderGoldenSnapshot(
    const scenario::ScenarioSpec& spec) {
  Result<scenario::ResolvedScenario> resolved =
      scenario::ResolveScenario(spec);
  if (!resolved.ok()) return resolved.status();
  const topo::ClusterSpec& cluster = resolved->cluster;
  const model::CostModel cost(resolved->spec, cluster.gpu());

  // The situations the scenario implies, labeled and deduplicated in
  // first-appearance order (re-planning an already-seen phase would only
  // duplicate bytes).
  std::vector<std::pair<std::string, straggler::Situation>> situations;
  if (resolved->has_overlay) {
    situations.emplace_back("overlay", resolved->overlay);
  } else if (!resolved->trace.empty()) {
    std::vector<straggler::SituationId> seen;
    for (const straggler::TracePhase& phase : resolved->trace) {
      bool duplicate = false;
      for (straggler::SituationId id : seen) {
        if (id == phase.id) duplicate = true;
      }
      if (duplicate) continue;
      seen.push_back(phase.id);
      Result<straggler::Situation> situation =
          straggler::Situation::Canonical(cluster, phase.id);
      if (!situation.ok()) return situation.status();
      situations.emplace_back(straggler::SituationName(phase.id),
                              std::move(*situation));
    }
  } else {
    situations.emplace_back("Normal",
                            straggler::Situation(cluster.num_gpus()));
  }

  std::string out;
  out += "# malleus golden snapshot (regenerate: malleus_golden "
         "--update-golden)\n";
  out += "== scenario ==\n";
  out += scenario::SerializeScenario(spec);
  const core::Planner planner(cluster, cost);
  core::PlannerOptions options;
  options.num_threads = 1;
  for (const auto& [label, situation] : situations) {
    out += StrFormat("== situation %s ==\n", label.c_str());
    const Result<core::PlanResult> result =
        planner.Plan(situation, spec.batch, options);
    if (!result.ok()) {
      out += StrFormat("plan failed: %s\n",
                       result.status().ToString().c_str());
      continue;
    }
    out += core::PlanResultSnapshot(*result, cluster, cost, situation);
  }
  return out;
}

}  // namespace testkit
}  // namespace malleus
