// Reproduces Table 4: the case-study parallelization plans - 110B under S4
// (stragglers of three levels on three nodes) and 32B under S5 (a whole
// node of level-1 stragglers plus a level-2 straggler elsewhere). The
// printed plans show the same qualitative structure as the paper's:
// stragglers isolated into small groups, pipelines of unequal depth, fewer
// layers and less data on the straggling pipelines.

#include <cstdio>

#include "bench_util.h"
#include "core/planner.h"
#include "plan/estimator.h"

namespace malleus {
namespace bench {
namespace {

void RunCase(const Workload& w, straggler::SituationId id) {
  const model::CostModel cost(w.spec, w.cluster.gpu());
  core::Planner planner(w.cluster, cost);

  Result<straggler::Situation> s =
      straggler::Situation::Canonical(w.cluster, id);
  MALLEUS_CHECK_OK(s.status());

  const straggler::Situation healthy(w.cluster.num_gpus());
  Result<core::PlanResult> base = planner.Plan(healthy, w.global_batch);
  MALLEUS_CHECK_OK(base.status());

  core::PlannerOptions opts;
  opts.dp_degree = base->plan.dp_degree();
  Result<core::PlanResult> r = planner.Plan(*s, w.global_batch, opts);
  MALLEUS_CHECK_OK(r.status());

  std::printf("== Table 4 case: %s under %s ==\n", w.label.c_str(),
              straggler::SituationName(id));
  std::printf("%s\n", s->ToString().c_str());
  std::printf("%s", r->plan.ToString().c_str());
  std::printf("estimated step: %.1f s (healthy plan: %.1f s)\n\n",
              r->estimated_full_seconds, base->estimated_full_seconds);
}

}  // namespace
}  // namespace bench
}  // namespace malleus

int main() {
  std::printf("Malleus reproduction: Table 4 case studies\n\n");
  malleus::bench::RunCase(malleus::bench::Workload110B(),
                          malleus::straggler::SituationId::kS4);
  malleus::bench::RunCase(malleus::bench::Workload32B(),
                          malleus::straggler::SituationId::kS5);
  malleus::bench::DumpBenchMetrics("table4_cases");
  return 0;
}
