// Online fault-tolerance policy bench: four canned 64-GPU dynamic
// scenarios (flapping stragglers, correlated node failures, diurnal
// contention, and a mixed regime), each driven through the policy
// engine's six selectors (adaptive + five fixed policies) via
// policy::RunDynamic and, segment-wise over the same event trace, through
// the Megatron-LM (with restarts), DeepSpeed (with restarts) and
// Oobleck-style baselines.
//
// Two verdicts gate the exit code:
//   - determinism: the adaptive run's obs run log is byte-identical at
//     planner threads 1 and 4 on every scenario;
//   - adaptivity: adaptive cumulative goodput is >= the best fixed policy
//     on at least 3 of the 4 scenarios.
//
// Emits BENCH_policy.json (see bench::WriteBenchJson) with per-scenario
// per-selector goodput/wall/action counts, the baseline goodputs, and
// both verdicts.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/deepspeed.h"
#include "baselines/megatron.h"
#include "baselines/oobleck.h"
#include "bench_util.h"
#include "core/run_log.h"
#include "policy/events.h"
#include "policy/policy.h"
#include "policy/runner.h"
#include "scenario/scenario.h"
#include "straggler/situation.h"

namespace malleus {
namespace bench {
namespace {

struct DynamicCase {
  std::string label;
  scenario::DynamicSpec dynamic;
};

// The four canned regimes of the policy evaluation, all on the 64-GPU
// cluster (8 A800 nodes) training the 32B model. Rates are per GPU per
// iteration; every spec carries its own seed so the traces are stable
// regardless of harness changes.
std::vector<DynamicCase> CannedCases() {
  std::vector<DynamicCase> cases;
  {
    DynamicCase c;
    c.label = "flapping";
    c.dynamic.enabled = true;
    c.dynamic.iterations = 400;
    c.dynamic.straggle_rate = 0.0005;
    c.dynamic.recover_iters = 25;
    c.dynamic.flap_prob = 0.9;
    c.dynamic.flap_period = 10;
    c.dynamic.max_level = 3;
    c.dynamic.seed = 101;
    cases.push_back(c);
  }
  {
    DynamicCase c;
    c.label = "correlated_failure";
    c.dynamic.enabled = true;
    c.dynamic.iterations = 400;
    c.dynamic.straggle_rate = 0.0003;
    c.dynamic.fail_rate = 0.0001;
    c.dynamic.node_fail_rate = 0.0006;
    c.dynamic.recover_iters = 80;
    c.dynamic.max_level = 2;
    c.dynamic.seed = 202;
    cases.push_back(c);
  }
  {
    DynamicCase c;
    c.label = "diurnal";
    c.dynamic.enabled = true;
    c.dynamic.iterations = 400;
    c.dynamic.straggle_rate = 0.0015;
    c.dynamic.recover_iters = 40;
    c.dynamic.diurnal_amplitude = 1.0;
    c.dynamic.diurnal_period = 100;
    c.dynamic.max_level = 4;
    c.dynamic.seed = 303;
    cases.push_back(c);
  }
  {
    DynamicCase c;
    c.label = "mixed";
    c.dynamic.enabled = true;
    c.dynamic.iterations = 400;
    c.dynamic.straggle_rate = 0.0004;
    c.dynamic.fail_rate = 0.0001;
    c.dynamic.node_fail_rate = 0.00015;
    c.dynamic.recover_iters = 40;
    c.dynamic.flap_prob = 0.25;
    c.dynamic.flap_period = 20;
    c.dynamic.diurnal_amplitude = 0.5;
    c.dynamic.diurnal_period = 100;
    c.dynamic.max_level = 3;
    c.dynamic.seed = 404;
    cases.push_back(c);
  }
  return cases;
}

struct SelectorOutcome {
  std::string name;
  double goodput = 0.0;
  double wall_seconds = 0.0;
  double transition_seconds = 0.0;
  int events_applied = 0;
  int action_counts[policy::kNumPolicyActions] = {0, 0, 0, 0, 0};
  bool ok = false;
  std::string error;
};

struct BaselineOutcome {
  std::string name;
  double goodput = 0.0;
  double wall_seconds = 0.0;
  bool stalled = false;  ///< Hit an infeasible situation and stopped.
};

// Drives one TrainingFramework segment-wise through the event trace: the
// framework steps at its current configuration until the next event, then
// sees the new situation (and pays any restart/migration it reports).
// Goodput uses the framework's own healthy step time as the numeraire, so
// template overheads (Oobleck) count against it exactly as in the paper.
BaselineOutcome DriveBaseline(baselines::TrainingFramework& framework,
                              const topo::ClusterSpec& cluster,
                              const policy::EventTrace& trace,
                              int64_t global_batch) {
  BaselineOutcome out;
  out.name = framework.name();
  straggler::Situation situation(cluster.num_gpus());
  if (!framework.Initialize(global_batch).ok()) {
    out.stalled = true;
    return out;
  }
  const Result<double> healthy = framework.StepSeconds(situation);
  if (!healthy.ok() || !std::isfinite(*healthy) || *healthy <= 0.0) {
    out.stalled = true;
    return out;
  }
  double wall = 0.0;
  int64_t at = 0;
  auto advance = [&](int64_t until) -> bool {
    if (until <= at) return true;
    const Result<double> step = framework.StepSeconds(situation);
    if (!step.ok() || !std::isfinite(*step)) return false;
    wall += static_cast<double>(until - at) * *step;
    at = until;
    return true;
  };
  for (const policy::ClusterEvent& event : trace.events) {
    if (!advance(event.iteration)) {
      out.stalled = true;
      return out;
    }
    policy::ApplyEvent(cluster, event, &situation);
    const Result<baselines::TransitionReport> transition =
        framework.OnSituationChange(situation);
    if (!transition.ok()) {
      out.stalled = true;
      return out;
    }
    wall += transition->restart_seconds + transition->migration_seconds;
  }
  if (!advance(trace.iterations)) {
    out.stalled = true;
    return out;
  }
  out.wall_seconds = wall;
  out.goodput =
      wall > 0.0 ? static_cast<double>(trace.iterations) * *healthy / wall
                 : 0.0;
  return out;
}

SelectorOutcome RunSelector(const std::string& name,
                            const topo::ClusterSpec& cluster,
                            const model::CostModel& cost,
                            const policy::EventTrace& trace,
                            int64_t global_batch, int planner_threads,
                            std::string* run_log_jsonl) {
  SelectorOutcome out;
  out.name = name;
  Result<std::unique_ptr<policy::PolicySelector>> selector =
      policy::MakeSelector(name);
  if (!selector.ok()) {
    out.error = selector.status().ToString();
    return out;
  }
  straggler::Situation healthy(cluster.num_gpus());
  core::RunLog run_log;
  policy::DynamicRunOptions options;
  options.planner.num_threads = planner_threads;
  if (run_log_jsonl != nullptr) options.run_log = &run_log;
  Result<policy::DynamicRunResult> run = policy::RunDynamic(
      cluster, cost, healthy, trace, global_batch, **selector, options);
  if (!run.ok()) {
    out.error = run.status().ToString();
    return out;
  }
  if (!run->stop_reason.empty()) {
    out.error = "stopped early: " + run->stop_reason;
    return out;
  }
  out.ok = true;
  out.goodput = run->goodput;
  out.wall_seconds = run->wall_seconds;
  out.transition_seconds = run->transition_seconds;
  out.events_applied = run->events_applied;
  for (int a = 0; a < policy::kNumPolicyActions; ++a) {
    out.action_counts[a] = run->action_counts[a];
  }
  if (run_log_jsonl != nullptr) *run_log_jsonl = run_log.ToJsonl();
  return out;
}

std::string ActionCountsJson(const int counts[policy::kNumPolicyActions]) {
  std::string json = "{";
  for (int a = 0; a < policy::kNumPolicyActions; ++a) {
    if (a > 0) json += ",";
    json += StrFormat(
        "\"%s\":%d",
        policy::PolicyActionName(static_cast<policy::PolicyAction>(a)),
        counts[a]);
  }
  json += "}";
  return json;
}

int Run() {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(8);
  const model::CostModel cost(model::ModelSpec::Llama32B(),
                              topo::GpuSpec());
  const int64_t global_batch = 64;
  const std::vector<DynamicCase> cases = CannedCases();
  const auto selector_names = policy::SelectorNames();

  int adaptive_wins = 0;
  bool deterministic = true;
  std::string scenarios_json = "[";
  bool first_case = true;

  for (const DynamicCase& c : cases) {
    const uint64_t seed = c.dynamic.seed != 0 ? c.dynamic.seed : 1;
    const policy::EventTrace trace =
        policy::GenerateEventTrace(cluster, c.dynamic, seed);
    std::printf("\n== %s: %zu event(s) over %lld iterations ==\n",
                c.label.c_str(), trace.events.size(),
                static_cast<long long>(trace.iterations));

    double adaptive_goodput = 0.0;
    double best_fixed_goodput = 0.0;
    std::string best_fixed;
    std::string selectors_json = "[";
    bool first_selector = true;
    for (const std::string& name : selector_names) {
      std::string log1;
      const SelectorOutcome outcome = RunSelector(
          name, cluster, cost, trace, global_batch, /*planner_threads=*/1,
          name == "adaptive" ? &log1 : nullptr);
      if (!outcome.ok) {
        std::printf("  %-10s FAILED: %s\n", name.c_str(),
                    outcome.error.c_str());
      } else {
        std::printf("  %-10s goodput %.4f  wall %10.1f s  transitions "
                    "%8.1f s\n",
                    name.c_str(), outcome.goodput, outcome.wall_seconds,
                    outcome.transition_seconds);
      }
      if (name == "adaptive") {
        adaptive_goodput = outcome.goodput;
        // Determinism gate: the same trace at planner threads 4 must
        // produce a byte-identical obs run log.
        std::string log4;
        const SelectorOutcome redo = RunSelector(
            name, cluster, cost, trace, global_batch,
            /*planner_threads=*/4, &log4);
        if (!redo.ok || log4 != log1) {
          deterministic = false;
          std::printf("  %-10s NOT thread-deterministic\n", name.c_str());
        }
      } else if (outcome.ok && outcome.goodput > best_fixed_goodput) {
        best_fixed_goodput = outcome.goodput;
        best_fixed = name;
      }
      if (!first_selector) selectors_json += ",";
      first_selector = false;
      selectors_json += StrFormat(
          "{\"name\":\"%s\",\"ok\":%s,\"goodput\":%.6f,"
          "\"wall_seconds\":%.3f,\"transition_seconds\":%.3f,"
          "\"events\":%d,\"actions\":%s}",
          name.c_str(), outcome.ok ? "true" : "false", outcome.goodput,
          outcome.wall_seconds, outcome.transition_seconds,
          outcome.events_applied,
          ActionCountsJson(outcome.action_counts).c_str());
    }
    selectors_json += "]";

    // The competitor frameworks over the same trace, segment-wise.
    std::string baselines_json = "[";
    {
      std::vector<std::unique_ptr<baselines::TrainingFramework>> frameworks;
      {
        baselines::MegatronOptions o;
        o.with_restart = true;
        frameworks.push_back(std::make_unique<baselines::MegatronBaseline>(
            cluster, cost, o));
      }
      {
        baselines::DeepSpeedOptions o;
        o.with_restart = true;
        o.restart_cost.framework_init_seconds = 40.0;
        frameworks.push_back(std::make_unique<baselines::DeepSpeedBaseline>(
            cluster, cost, o));
      }
      {
        baselines::OobleckOptions o;
        frameworks.push_back(std::make_unique<baselines::OobleckBaseline>(
            cluster, cost, o));
      }
      bool first_baseline = true;
      for (const auto& framework : frameworks) {
        const BaselineOutcome outcome =
            DriveBaseline(*framework, cluster, trace, global_batch);
        if (outcome.stalled) {
          std::printf("  %-22s stalled\n", outcome.name.c_str());
        } else {
          std::printf("  %-22s goodput %.4f  wall %10.1f s\n",
                      outcome.name.c_str(), outcome.goodput,
                      outcome.wall_seconds);
        }
        if (!first_baseline) baselines_json += ",";
        first_baseline = false;
        baselines_json += StrFormat(
            "{\"name\":\"%s\",\"stalled\":%s,\"goodput\":%.6f,"
            "\"wall_seconds\":%.3f}",
            outcome.name.c_str(), outcome.stalled ? "true" : "false",
            outcome.goodput, outcome.wall_seconds);
      }
    }
    baselines_json += "]";

    const bool adaptive_won = adaptive_goodput + 1e-9 >= best_fixed_goodput;
    if (adaptive_won) ++adaptive_wins;
    std::printf("  adaptive %.4f vs best fixed (%s) %.4f -> %s\n",
                adaptive_goodput, best_fixed.c_str(), best_fixed_goodput,
                adaptive_won ? "win" : "loss");

    if (!first_case) scenarios_json += ",";
    first_case = false;
    scenarios_json += StrFormat(
        "{\"label\":\"%s\",\"events\":%zu,\"iterations\":%lld,"
        "\"adaptive_goodput\":%.6f,\"best_fixed\":\"%s\","
        "\"best_fixed_goodput\":%.6f,\"adaptive_win\":%s,"
        "\"selectors\":%s,\"baselines\":%s}",
        c.label.c_str(), trace.events.size(),
        static_cast<long long>(trace.iterations), adaptive_goodput,
        best_fixed.c_str(), best_fixed_goodput,
        adaptive_won ? "true" : "false", selectors_json.c_str(),
        baselines_json.c_str());
  }
  scenarios_json += "]";

  const bool adaptive_ok = adaptive_wins >= 3;
  std::printf("\nadaptive wins %d of %zu scenario(s); thread-deterministic: "
              "%s\n",
              adaptive_wins, cases.size(), deterministic ? "yes" : "NO");

  std::string json = "{";
  json += "\"bench\":\"policy\",\"cluster\":\"A800x8\",\"model\":\"32b\",";
  json += StrFormat("\"adaptive_wins\":%d,\"scenario_count\":%zu,",
                    adaptive_wins, cases.size());
  json += StrFormat("\"adaptive_ok\":%s,\"deterministic\":%s,",
                    adaptive_ok ? "true" : "false",
                    deterministic ? "true" : "false");
  json += "\"scenarios\":" + scenarios_json;
  json += "}";
  WriteBenchJson("policy", json);
  DumpBenchMetrics("policy");
  return adaptive_ok && deterministic ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace malleus

int main() { return malleus::bench::Run(); }
