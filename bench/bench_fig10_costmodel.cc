// Reproduces Figure 10 (Appendix A.1): cost-model validation by exhaustive
// enumeration. 32B model, fixed DP4 x TP2 x PP2 over 16 GPUs, sequence
// length reduced to 1K (to void memory constraints), B = 512, b = 1, one
// level-1 straggler on GPU 0.
//
// Pass 1 enumerates the layers l given to the straggler's stage (the other
// stage of that pipeline gets 60 - l; healthy pipelines stay 30/30) and
// prints estimated vs simulated step time. Pass 2 fixes the best l and
// enumerates the micro-batches m of the straggler's pipeline (the healthy
// pipelines split the rest evenly). The cost-model minimum must coincide
// with the simulated minimum.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "plan/estimator.h"
#include "plan/uniform.h"
#include "sim/pipeline_sim.h"

namespace malleus {
namespace bench {
namespace {

// Returns the simulated step time, or a negative value when the layout
// does not fit in memory (skipped enumeration point).
double Simulated(const topo::ClusterSpec& cluster,
                 const model::CostModel& cost, const plan::ParallelPlan& p,
                 const straggler::Situation& s) {
  Rng rng(5);
  sim::SimOptions opts;
  opts.timing_noise_stddev = 0.0;  // Deterministic enumeration.
  Result<sim::StepResult> r =
      sim::SimulateStep(cluster, cost, p, s, opts, &rng);
  if (!r.ok()) return -1.0;
  return r->step_seconds;
}

void Run() {
  model::ModelSpec spec = model::ModelSpec::Llama32B();
  spec.seq_len = 1024;
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(2);
  // The fixed DP4 x TP2 x PP2 layout of Appendix A.1 only leaves room for
  // wide layer enumeration under a bf16-gradient recipe; use it here.
  model::CostModelConfig config;
  config.replicated_bytes_per_param = 4.0;
  const model::CostModel cost(spec, cluster.gpu(), config);

  plan::UniformConfig cfg;
  cfg.dp = 4;
  cfg.tp = 2;
  cfg.pp = 2;
  cfg.micro_batch_size = 1;
  cfg.global_batch = 512;
  Result<plan::ParallelPlan> built =
      plan::BuildUniformPlan(cluster, cost, cluster.AllGpus(), cfg);
  MALLEUS_CHECK_OK(built.status());
  plan::ParallelPlan p = std::move(built).ValueOrDie();

  straggler::Situation s(cluster.num_gpus());
  s.SetLevel(0, 1);  // GPU 0 sits in pipeline 0, stage 0.

  const int L = spec.num_layers;

  // ---- Pass 1: layer enumeration ----
  TablePrinter layers_table(
      "Figure 10a: layers on the straggler stage (B=512 even data)");
  layers_table.SetHeader({"l (straggler stage)", "estimated s",
                          "simulated s"});
  int best_l = -1;
  double best_l_sim = 1e30, best_l_est = 1e30;
  int best_l_est_arg = -1;
  for (int l = 2; l <= 30; l += 2) {
    p.pipelines[0].stages[0].num_layers = l;
    p.pipelines[0].stages[1].num_layers = L - l;
    const double est =
        plan::EstimateStep(p, cost, s).step_seconds;
    const double simulated = Simulated(cluster, cost, p, s);
    if (simulated < 0) {
      layers_table.AddRow({StrFormat("%d", l), StrFormat("%.2f", est),
                           "OOM"});
      continue;
    }
    layers_table.AddRow({StrFormat("%d", l), StrFormat("%.2f", est),
                         StrFormat("%.2f", simulated)});
    if (simulated < best_l_sim) {
      best_l_sim = simulated;
      best_l = l;
    }
    if (est < best_l_est) {
      best_l_est = est;
      best_l_est_arg = l;
    }
  }
  layers_table.Print();
  if (best_l < 0) {
    std::printf("every layer split was memory-infeasible; skipping the "
                "data enumeration\n");
    return;
  }
  std::printf("simulated optimum at l=%d; cost-model optimum at l=%d\n\n",
              best_l, best_l_est_arg);

  // ---- Pass 2: data enumeration at the best layer split ----
  p.pipelines[0].stages[0].num_layers = best_l;
  p.pipelines[0].stages[1].num_layers = L - best_l;
  TablePrinter data_table(
      "Figure 10b: micro-batches on the straggler pipeline");
  data_table.SetHeader({"m (straggler pipe)", "estimated s", "simulated s"});
  int best_m = -1, best_m_est_arg = -1;
  double best_m_sim = 1e30, best_m_est = 1e30;
  for (int m = 32; m <= 128; m += 8) {
    const int rest = 512 - m;
    p.pipelines[0].num_microbatches = m;
    for (int i = 1; i < 4; ++i) {
      p.pipelines[i].num_microbatches = rest / 3 + (i - 1 < rest % 3 ? 1 : 0);
    }
    const double est = plan::EstimateStep(p, cost, s).step_seconds;
    const double simulated = Simulated(cluster, cost, p, s);
    if (simulated < 0) {
      data_table.AddRow({StrFormat("%d", m), StrFormat("%.2f", est), "OOM"});
      continue;
    }
    data_table.AddRow({StrFormat("%d", m), StrFormat("%.2f", est),
                       StrFormat("%.2f", simulated)});
    if (simulated < best_m_sim) {
      best_m_sim = simulated;
      best_m = m;
    }
    if (est < best_m_est) {
      best_m_est = est;
      best_m_est_arg = m;
    }
  }
  data_table.Print();
  std::printf("simulated optimum at m=%d; cost-model optimum at m=%d\n",
              best_m, best_m_est_arg);
}

}  // namespace
}  // namespace bench
}  // namespace malleus

int main() {
  std::printf("Malleus reproduction: Figure 10 cost-model validation\n\n");
  malleus::bench::Run();
  malleus::bench::DumpBenchMetrics("fig10_costmodel");
  return 0;
}
