// Planner thread-scaling bench: wall time of one Plan() call at worker
// thread counts {1,2,4,8} across cluster sizes, plus the single-thread
// speedup from a warm SolveCache (re-planning the same situation). Every
// configuration must produce a bit-identical plan — the bench checks the
// plan signatures and estimates and reports any divergence.
//
// Emits BENCH_planner_scaling.json (see bench::WriteBenchJson) with the
// measured seconds, speedups and the identical-plan verdict per scenario.

#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/planner.h"
#include "net/flow_sim.h"

namespace malleus {
namespace bench {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr int kReps = 3;  // Best-of-N per configuration.

struct Scenario {
  std::string label;
  model::ModelSpec spec;
  topo::ClusterSpec cluster;
  straggler::Situation situation;
  int64_t global_batch;
  int dp_degree;  // 0 enumerates the full dp sweep (the heavy case).
};

struct Measured {
  double seconds = std::numeric_limits<double>::infinity();
  std::string signature;
  double estimate = 0.0;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One cold Plan() call: fresh planner (empty cache) per repetition so every
// run performs identical work; best-of-kReps wall time.
Measured MeasureCold(const Scenario& sc, const model::CostModel& cost,
                     int threads) {
  Measured m;
  for (int rep = 0; rep < kReps; ++rep) {
    core::Planner planner(sc.cluster, cost);
    core::PlannerOptions opts;
    opts.dp_degree = sc.dp_degree;
    opts.num_threads = threads;
    const double t0 = Now();
    Result<core::PlanResult> r =
        planner.Plan(sc.situation, sc.global_batch, opts);
    const double seconds = Now() - t0;
    MALLEUS_CHECK_OK(r.status());
    if (seconds < m.seconds) m.seconds = seconds;
    m.signature = r->plan.Signature();
    m.estimate = r->estimated_full_seconds;
  }
  return m;
}

// Warm-cache re-plan: one cold call fills the planner's SolveCache, then
// the same situation is re-planned on the same planner (single thread).
Measured MeasureWarm(const Scenario& sc, const model::CostModel& cost) {
  Measured m;
  core::Planner planner(sc.cluster, cost);
  core::PlannerOptions opts;
  opts.dp_degree = sc.dp_degree;
  opts.num_threads = 1;
  MALLEUS_CHECK_OK(
      planner.Plan(sc.situation, sc.global_batch, opts).status());
  for (int rep = 0; rep < kReps; ++rep) {
    const double t0 = Now();
    Result<core::PlanResult> r =
        planner.Plan(sc.situation, sc.global_batch, opts);
    const double seconds = Now() - t0;
    MALLEUS_CHECK_OK(r.status());
    if (seconds < m.seconds) m.seconds = seconds;
    m.signature = r->plan.Signature();
    m.estimate = r->estimated_full_seconds;
  }
  return m;
}

// Cache-off single-thread run, for the cache-speedup denominator and the
// cache-on/off plan-identity check.
Measured MeasureNoCache(const Scenario& sc, const model::CostModel& cost) {
  Measured m;
  for (int rep = 0; rep < kReps; ++rep) {
    core::Planner planner(sc.cluster, cost);
    core::PlannerOptions opts;
    opts.dp_degree = sc.dp_degree;
    opts.num_threads = 1;
    opts.enable_solve_cache = false;
    const double t0 = Now();
    Result<core::PlanResult> r =
        planner.Plan(sc.situation, sc.global_batch, opts);
    const double seconds = Now() - t0;
    MALLEUS_CHECK_OK(r.status());
    if (seconds < m.seconds) m.seconds = seconds;
    m.signature = r->plan.Signature();
    m.estimate = r->estimated_full_seconds;
  }
  return m;
}

// ---------------------------------------------------------------------------
// Scale-out section: hierarchical planning on pod-structured fat-tree
// clusters at 512 / 2048 / 8192 GPUs. The acceptance bar is a sub-second
// cold plan at 2048 GPUs and an 8192-GPU plan that completes at all; the
// warm column shows the island-memo delta re-plan after one new straggler.

topo::ClusterSpec ScaleCluster(int nodes, int gpn, int nodes_per_pod,
                               double oversub) {
  topo::FabricSpec f;
  f.kind = topo::FabricSpec::Kind::kFatTree;
  f.nodes_per_pod = nodes_per_pod;
  f.oversubscription = oversub;
  return topo::ClusterSpec(nodes, gpn, topo::GpuSpec(), topo::LinkSpec(), f);
}

std::string RunScale() {
  struct ScaleCase {
    std::string label;
    int nodes, gpn, pod;
    int64_t batch;
  };
  const std::vector<ScaleCase> cases = {
      {"512 GPUs (64n fat-tree, pods of 4)", 64, 8, 4, 1024},
      {"2048 GPUs (256n fat-tree, pods of 8)", 256, 8, 8, 2048},
      {"8192 GPUs (1024n fat-tree, pods of 16)", 1024, 8, 16, 8192},
  };

  std::string json = "\"scale\":[";
  TablePrinter table("hierarchical planning at scale (fat-tree, 4:1 spine)");
  table.SetHeader({"Scenario", "cold plan", "warm delta re-plan",
                   "sub-second", "valid"});
  bool first = true;
  for (const ScaleCase& c : cases) {
    const topo::ClusterSpec cluster = ScaleCluster(c.nodes, c.gpn, c.pod, 4.0);
    const model::CostModel cost(model::ModelSpec::Tiny(), cluster.gpu());
    straggler::Situation situation(cluster.num_gpus());
    situation.SetLevel(0, 3);  // One S3-style straggler in pod 0 ...
    situation.SetLevel(cluster.num_gpus() / 2, 1);  // ... one S1 mid-cluster.

    core::Planner planner(cluster, cost);
    double cold = std::numeric_limits<double>::infinity();
    Result<core::PlanResult> r = Status::Internal("unset");
    for (int rep = 0; rep < kReps; ++rep) {
      core::Planner fresh(cluster, cost);
      const double t0 = Now();
      Result<core::PlanResult> attempt = fresh.Plan(situation, c.batch);
      const double seconds = Now() - t0;
      MALLEUS_CHECK_OK(attempt.status());
      if (seconds < cold) cold = seconds;
      r = std::move(attempt);
    }
    const bool valid = r->plan.Validate(cluster, cost).ok();

    // Warm delta re-plan on a planner whose island memo is already primed:
    // one additional straggler appears, everything else replays.
    MALLEUS_CHECK_OK(planner.Plan(situation, c.batch).status());
    situation.SetLevel(cluster.num_gpus() / 4, 2);
    const double t1 = Now();
    MALLEUS_CHECK_OK(planner.Plan(situation, c.batch).status());
    const double warm = Now() - t1;

    const bool sub_second = cold < 1.0;
    table.AddRow({c.label, StrFormat("%.3fs", cold),
                  StrFormat("%.3fs", warm), sub_second ? "yes" : "NO",
                  valid ? "yes" : "NO"});
    if (!first) json += ",";
    first = false;
    json += StrFormat(
        "{\"label\":\"%s\",\"gpus\":%d,\"cold_seconds\":%.6f,"
        "\"warm_replan_seconds\":%.6f,\"sub_second\":%s,"
        "\"plan_valid\":%s}",
        JsonEscape(c.label).c_str(), c.nodes * c.gpn, cold, warm,
        sub_second ? "true" : "false", valid ? "true" : "false");
  }
  json += "]";
  table.Print();
  return json;
}

// ---------------------------------------------------------------------------
// FlowSim event-loop section: 2048 staggered flows on a 256-GPU fat-tree
// fabric, played once by the seed's from-scratch legacy engine and once by
// the incremental engine. Both must agree bitwise; the speedup column is
// the acceptance number (target >= 10x).

std::vector<net::Flow> ScaleFlows(const topo::ClusterSpec& cluster) {
  // Eight staggered waves of neighbour shuffles: wave w sends GPU g ->
  // g + w + 1, all waves offset in time so the active set churns — the
  // regime where from-scratch re-sharing at every event hurts most.
  std::vector<net::Flow> flows;
  const int n = cluster.num_gpus();
  const int waves = 2048 / n;
  for (int w = 0; w < waves; ++w) {
    for (int g = 0; g < n; ++g) {
      net::Flow f;
      f.src = g;
      f.dst = (g + w + 1) % n;
      f.bytes = 1e9 + 1e7 * ((g + w) % 13);
      f.start_seconds = 0.05 * w + 1e-4 * (g % 7);
      flows.push_back(f);
    }
  }
  return flows;
}

std::string RunFlowSim() {
  const topo::ClusterSpec cluster = ScaleCluster(32, 8, 4, 4.0);
  const net::Fabric fabric(cluster);
  const std::vector<net::Flow> flows = ScaleFlows(cluster);

  const auto measure = [&](net::FlowSimMode mode, double* makespan,
                           std::vector<net::FlowOutcome>* outcomes) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      net::FlowSim sim(fabric, mode);
      for (const net::Flow& f : flows) sim.Submit(f);
      const double t0 = Now();
      sim.Run();
      const double seconds = Now() - t0;
      if (seconds < best) best = seconds;
      *makespan = sim.MakespanSeconds();
      *outcomes = sim.outcomes();
    }
    return best;
  };

  double legacy_makespan = 0.0, incr_makespan = 0.0;
  std::vector<net::FlowOutcome> legacy_out, incr_out;
  const double legacy_seconds =
      measure(net::FlowSimMode::kLegacy, &legacy_makespan, &legacy_out);
  const double incr_seconds =
      measure(net::FlowSimMode::kIncremental, &incr_makespan, &incr_out);

  bool identical = legacy_makespan == incr_makespan &&
                   legacy_out.size() == incr_out.size();
  for (size_t i = 0; identical && i < legacy_out.size(); ++i) {
    identical = legacy_out[i].end_seconds == incr_out[i].end_seconds;
  }
  const double speedup = legacy_seconds / incr_seconds;

  TablePrinter table("FlowSim event loop, 2048 flows on a 256-GPU fat-tree");
  table.SetHeader({"Engine", "wall time", "makespan", "speedup",
                   "bit-identical"});
  table.AddRow({"legacy (from-scratch)", StrFormat("%.3fs", legacy_seconds),
                StrFormat("%.4fs", legacy_makespan), "1.00x",
                identical ? "yes" : "NO"});
  table.AddRow({"incremental", StrFormat("%.3fs", incr_seconds),
                StrFormat("%.4fs", incr_makespan),
                StrFormat("%.2fx", speedup), identical ? "yes" : "NO"});
  table.Print();

  return StrFormat(
      "\"flowsim\":{\"flows\":%d,\"legacy_seconds\":%.6f,"
      "\"incremental_seconds\":%.6f,\"speedup\":%.3f,"
      "\"bit_identical\":%s}",
      static_cast<int>(flows.size()), legacy_seconds, incr_seconds, speedup,
      identical ? "true" : "false");
}

void Run() {
  std::vector<Scenario> scenarios;
  {
    Scenario sc{"32 GPUs (S3)", model::ModelSpec::Llama32B(),
                topo::ClusterSpec::A800Cluster(4), straggler::Situation(32),
                64, 0};
    sc.situation = straggler::Situation::Canonical(sc.cluster,
                                                   straggler::SituationId::kS3)
                       .ValueOrDie();
    scenarios.push_back(std::move(sc));
  }
  {
    Scenario sc{"64 GPUs (S3)", model::ModelSpec::Llama110B(),
                topo::ClusterSpec::A800Cluster(8), straggler::Situation(64),
                64, 0};
    sc.situation = straggler::Situation::Canonical(sc.cluster,
                                                   straggler::SituationId::kS3)
                       .ValueOrDie();
    scenarios.push_back(std::move(sc));
  }

  std::string json = "{\"bench\":\"planner_scaling\",\"scenarios\":[";
  TablePrinter table("planner thread scaling (cold cache, best of 3)");
  table.SetHeader({"Scenario", "1 thread", "2 threads", "4 threads",
                   "8 threads", "8T speedup", "cache speedup", "identical"});
  bool first = true;
  for (const Scenario& sc : scenarios) {
    const model::CostModel cost(sc.spec, sc.cluster.gpu());
    std::vector<Measured> by_threads;
    for (int threads : kThreadCounts) {
      by_threads.push_back(MeasureCold(sc, cost, threads));
    }
    const Measured warm = MeasureWarm(sc, cost);
    const Measured nocache = MeasureNoCache(sc, cost);

    bool identical = true;
    for (const Measured& m : by_threads) {
      identical = identical && m.signature == by_threads[0].signature &&
                  m.estimate == by_threads[0].estimate;
    }
    identical = identical && warm.signature == by_threads[0].signature &&
                nocache.signature == by_threads[0].signature &&
                warm.estimate == by_threads[0].estimate &&
                nocache.estimate == by_threads[0].estimate;

    const double speedup_8t = by_threads[0].seconds / by_threads[3].seconds;
    const double speedup_cache = nocache.seconds / warm.seconds;
    table.AddRow({sc.label, StrFormat("%.3fs", by_threads[0].seconds),
                  StrFormat("%.3fs", by_threads[1].seconds),
                  StrFormat("%.3fs", by_threads[2].seconds),
                  StrFormat("%.3fs", by_threads[3].seconds),
                  StrFormat("%.2fx", speedup_8t),
                  StrFormat("%.2fx", speedup_cache),
                  identical ? "yes" : "NO"});

    if (!first) json += ",";
    first = false;
    json += StrFormat("{\"label\":\"%s\",\"threads\":[",
                      JsonEscape(sc.label).c_str());
    for (size_t i = 0; i < by_threads.size(); ++i) {
      if (i > 0) json += ",";
      json += StrFormat("{\"threads\":%d,\"seconds\":%.6f,\"speedup\":%.3f}",
                        kThreadCounts[i], by_threads[i].seconds,
                        by_threads[0].seconds / by_threads[i].seconds);
    }
    json += StrFormat(
        "],\"cache\":{\"cold_seconds\":%.6f,\"warm_seconds\":%.6f,"
        "\"nocache_seconds\":%.6f,\"speedup\":%.3f},"
        "\"identical_plans\":%s}",
        by_threads[0].seconds, warm.seconds, nocache.seconds, speedup_cache,
        identical ? "true" : "false");
  }
  json += "],";
  table.Print();
  std::printf(
      "\nIdentical = plan signature and full-step estimate match across all\n"
      "thread counts, warm/cold cache and cache-off. Thread speedups are\n"
      "bounded by the machine's core count; on a single-core host all\n"
      "thread columns measure the same serialized work.\n\n");
  json += RunScale() + ",";
  std::printf("\n");
  json += RunFlowSim();
  json += "}\n";
  WriteBenchJson("planner_scaling", json);
}

}  // namespace
}  // namespace bench
}  // namespace malleus

int main() {
  std::printf("Malleus bench: planner thread scaling + solve cache\n\n");
  malleus::bench::Run();
  malleus::bench::DumpBenchMetrics("planner_scaling");
  return 0;
}
