// Planner thread-scaling bench: wall time of one Plan() call at worker
// thread counts {1,2,4,8} across cluster sizes, plus the single-thread
// speedup from a warm SolveCache (re-planning the same situation). Every
// configuration must produce a bit-identical plan — the bench checks the
// plan signatures and estimates and reports any divergence.
//
// Emits BENCH_planner_scaling.json (see bench::WriteBenchJson) with the
// measured seconds, speedups and the identical-plan verdict per scenario.

#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/planner.h"

namespace malleus {
namespace bench {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr int kReps = 3;  // Best-of-N per configuration.

struct Scenario {
  std::string label;
  model::ModelSpec spec;
  topo::ClusterSpec cluster;
  straggler::Situation situation;
  int64_t global_batch;
  int dp_degree;  // 0 enumerates the full dp sweep (the heavy case).
};

struct Measured {
  double seconds = std::numeric_limits<double>::infinity();
  std::string signature;
  double estimate = 0.0;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One cold Plan() call: fresh planner (empty cache) per repetition so every
// run performs identical work; best-of-kReps wall time.
Measured MeasureCold(const Scenario& sc, const model::CostModel& cost,
                     int threads) {
  Measured m;
  for (int rep = 0; rep < kReps; ++rep) {
    core::Planner planner(sc.cluster, cost);
    core::PlannerOptions opts;
    opts.dp_degree = sc.dp_degree;
    opts.num_threads = threads;
    const double t0 = Now();
    Result<core::PlanResult> r =
        planner.Plan(sc.situation, sc.global_batch, opts);
    const double seconds = Now() - t0;
    MALLEUS_CHECK_OK(r.status());
    if (seconds < m.seconds) m.seconds = seconds;
    m.signature = r->plan.Signature();
    m.estimate = r->estimated_full_seconds;
  }
  return m;
}

// Warm-cache re-plan: one cold call fills the planner's SolveCache, then
// the same situation is re-planned on the same planner (single thread).
Measured MeasureWarm(const Scenario& sc, const model::CostModel& cost) {
  Measured m;
  core::Planner planner(sc.cluster, cost);
  core::PlannerOptions opts;
  opts.dp_degree = sc.dp_degree;
  opts.num_threads = 1;
  MALLEUS_CHECK_OK(
      planner.Plan(sc.situation, sc.global_batch, opts).status());
  for (int rep = 0; rep < kReps; ++rep) {
    const double t0 = Now();
    Result<core::PlanResult> r =
        planner.Plan(sc.situation, sc.global_batch, opts);
    const double seconds = Now() - t0;
    MALLEUS_CHECK_OK(r.status());
    if (seconds < m.seconds) m.seconds = seconds;
    m.signature = r->plan.Signature();
    m.estimate = r->estimated_full_seconds;
  }
  return m;
}

// Cache-off single-thread run, for the cache-speedup denominator and the
// cache-on/off plan-identity check.
Measured MeasureNoCache(const Scenario& sc, const model::CostModel& cost) {
  Measured m;
  for (int rep = 0; rep < kReps; ++rep) {
    core::Planner planner(sc.cluster, cost);
    core::PlannerOptions opts;
    opts.dp_degree = sc.dp_degree;
    opts.num_threads = 1;
    opts.enable_solve_cache = false;
    const double t0 = Now();
    Result<core::PlanResult> r =
        planner.Plan(sc.situation, sc.global_batch, opts);
    const double seconds = Now() - t0;
    MALLEUS_CHECK_OK(r.status());
    if (seconds < m.seconds) m.seconds = seconds;
    m.signature = r->plan.Signature();
    m.estimate = r->estimated_full_seconds;
  }
  return m;
}

void Run() {
  std::vector<Scenario> scenarios;
  {
    Scenario sc{"32 GPUs (S3)", model::ModelSpec::Llama32B(),
                topo::ClusterSpec::A800Cluster(4), straggler::Situation(32),
                64, 0};
    sc.situation = straggler::Situation::Canonical(sc.cluster,
                                                   straggler::SituationId::kS3)
                       .ValueOrDie();
    scenarios.push_back(std::move(sc));
  }
  {
    Scenario sc{"64 GPUs (S3)", model::ModelSpec::Llama110B(),
                topo::ClusterSpec::A800Cluster(8), straggler::Situation(64),
                64, 0};
    sc.situation = straggler::Situation::Canonical(sc.cluster,
                                                   straggler::SituationId::kS3)
                       .ValueOrDie();
    scenarios.push_back(std::move(sc));
  }

  std::string json = "{\"bench\":\"planner_scaling\",\"scenarios\":[";
  TablePrinter table("planner thread scaling (cold cache, best of 3)");
  table.SetHeader({"Scenario", "1 thread", "2 threads", "4 threads",
                   "8 threads", "8T speedup", "cache speedup", "identical"});
  bool first = true;
  for (const Scenario& sc : scenarios) {
    const model::CostModel cost(sc.spec, sc.cluster.gpu());
    std::vector<Measured> by_threads;
    for (int threads : kThreadCounts) {
      by_threads.push_back(MeasureCold(sc, cost, threads));
    }
    const Measured warm = MeasureWarm(sc, cost);
    const Measured nocache = MeasureNoCache(sc, cost);

    bool identical = true;
    for (const Measured& m : by_threads) {
      identical = identical && m.signature == by_threads[0].signature &&
                  m.estimate == by_threads[0].estimate;
    }
    identical = identical && warm.signature == by_threads[0].signature &&
                nocache.signature == by_threads[0].signature &&
                warm.estimate == by_threads[0].estimate &&
                nocache.estimate == by_threads[0].estimate;

    const double speedup_8t = by_threads[0].seconds / by_threads[3].seconds;
    const double speedup_cache = nocache.seconds / warm.seconds;
    table.AddRow({sc.label, StrFormat("%.3fs", by_threads[0].seconds),
                  StrFormat("%.3fs", by_threads[1].seconds),
                  StrFormat("%.3fs", by_threads[2].seconds),
                  StrFormat("%.3fs", by_threads[3].seconds),
                  StrFormat("%.2fx", speedup_8t),
                  StrFormat("%.2fx", speedup_cache),
                  identical ? "yes" : "NO"});

    if (!first) json += ",";
    first = false;
    json += StrFormat("{\"label\":\"%s\",\"threads\":[",
                      JsonEscape(sc.label).c_str());
    for (size_t i = 0; i < by_threads.size(); ++i) {
      if (i > 0) json += ",";
      json += StrFormat("{\"threads\":%d,\"seconds\":%.6f,\"speedup\":%.3f}",
                        kThreadCounts[i], by_threads[i].seconds,
                        by_threads[0].seconds / by_threads[i].seconds);
    }
    json += StrFormat(
        "],\"cache\":{\"cold_seconds\":%.6f,\"warm_seconds\":%.6f,"
        "\"nocache_seconds\":%.6f,\"speedup\":%.3f},"
        "\"identical_plans\":%s}",
        by_threads[0].seconds, warm.seconds, nocache.seconds, speedup_cache,
        identical ? "true" : "false");
  }
  json += "]}\n";
  table.Print();
  std::printf(
      "\nIdentical = plan signature and full-step estimate match across all\n"
      "thread counts, warm/cold cache and cache-off. Thread speedups are\n"
      "bounded by the machine's core count; on a single-core host all\n"
      "thread columns measure the same serialized work.\n");
  WriteBenchJson("planner_scaling", json);
}

}  // namespace
}  // namespace bench
}  // namespace malleus

int main() {
  std::printf("Malleus bench: planner thread scaling + solve cache\n\n");
  malleus::bench::Run();
  malleus::bench::DumpBenchMetrics("planner_scaling");
  return 0;
}
