// Reproduces Tables 6-7 (Appendix A.3): the tuned Megatron-LM and
// DeepSpeed configurations the restart baselines fall back to in each
// scenario (healthy, and with 1 / 2 / 3 straggler nodes removed). These
// are the configurations a human operator would otherwise have to find by
// hand - the paper's argument for automating the search.

#include <cstdio>
#include <set>

#include "bench_util.h"
#include "common/table.h"
#include "plan/uniform.h"

namespace malleus {
namespace bench {
namespace {

std::string MegatronConfigString(const plan::ParallelPlan& p) {
  const plan::Pipeline& pipe = p.pipelines[0];
  std::set<int> layer_counts;
  for (const plan::Stage& s : pipe.stages) layer_counts.insert(s.num_layers);
  return StrFormat("DP%dTP%dPP%d%s, mbs%d%s", p.dp_degree(),
                   pipe.stages[0].group.size(), pipe.num_stages(),
                   p.activation_checkpointing ? "+AC" : "",
                   p.micro_batch_size,
                   layer_counts.size() > 1 ? " (uneven layers)" : "");
}

std::vector<topo::GpuId> GpusWithoutNodes(const topo::ClusterSpec& cluster,
                                          int removed) {
  std::vector<topo::GpuId> out;
  for (topo::NodeId n = removed; n < cluster.num_nodes(); ++n) {
    for (topo::GpuId g : cluster.GpusOnNode(n)) out.push_back(g);
  }
  return out;
}

void Run() {
  TablePrinter megatron("Table 6: tuned Megatron-LM w/ Restart configs");
  megatron.SetHeader({"Model", "Normal", "Remove 1 Node", "Remove 2 Nodes",
                      "Remove 3 Nodes"});
  TablePrinter deepspeed("Table 7: tuned DeepSpeed w/ Restart configs");
  deepspeed.SetHeader({"Model", "Normal", "Remove 1 Node", "Remove 2 Nodes",
                       "Remove 3 Nodes"});

  for (const Workload& w : AllWorkloads()) {
    const model::CostModel cost(w.spec, w.cluster.gpu());
    std::vector<std::string> mrow = {w.label};
    std::vector<std::string> drow = {w.label};
    baselines::DeepSpeedBaseline ds(w.cluster, cost,
                                    baselines::DeepSpeedOptions());
    MALLEUS_CHECK_OK(ds.Initialize(w.global_batch));
    for (int removed = 0; removed <= 3; ++removed) {
      const auto gpus = GpusWithoutNodes(w.cluster, removed);
      // Match the baselines' behaviour: the healthy config (Table 2 runs)
      // keeps Megatron's even-data semantics; only restart retuning may
      // spread a ragged remainder.
      Result<plan::ParallelPlan> mp = plan::TuneUniformPlan(
          w.cluster, cost, gpus, w.global_batch, /*max_micro_batch=*/4,
          /*allow_uneven_data=*/removed > 0);
      mrow.push_back(mp.ok() ? MegatronConfigString(*mp) : "infeasible");
      Result<baselines::DeepSpeedConfig> dc =
          ds.TuneConfig(static_cast<int>(gpus.size()));
      drow.push_back(dc.ok() ? dc->ToString() : "infeasible");
    }
    megatron.AddRow(std::move(mrow));
    deepspeed.AddRow(std::move(drow));
  }
  megatron.Print();
  std::printf("\n");
  deepspeed.Print();
  std::printf(
      "\nNote: configurations shift with every node-count change and often\n"
      "need uneven layer splits or batch adjustments - the manual effort\n"
      "the paper's planner eliminates.\n");
}

}  // namespace
}  // namespace bench
}  // namespace malleus

int main() {
  std::printf("Malleus reproduction: Tables 6-7 restart configurations\n\n");
  malleus::bench::Run();
  malleus::bench::DumpBenchMetrics("tables6_7_configs");
  return 0;
}
