// Reproduces Table 3: the ratio of step time with stragglers to step time
// without, comparing
//   R_actual - measured in the event simulator under the deduced plan,
//   R_opt    - the theoretic optimum N / ((N - n) + sum 1/x),
//   R_est    - the planner's closed-form estimate (Eq. (1) cost model),
// plus the paper's two gap columns 1 - R_opt/R_actual and
// 1 - R_est/R_actual.

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "core/planner.h"
#include "sim/pipeline_sim.h"

namespace malleus {
namespace bench {
namespace {

using straggler::Situation;
using straggler::SituationId;

// Mean simulated step time of a plan under a situation.
double SimulatedSeconds(const Workload& w, const model::CostModel& cost,
                        const plan::ParallelPlan& p, const Situation& s) {
  Rng rng(99);
  sim::SimOptions opts;
  double sum = 0.0;
  const int steps = 5;
  for (int i = 0; i < steps; ++i) {
    Result<sim::StepResult> r =
        sim::SimulateStep(w.cluster, cost, p, s, opts, &rng);
    MALLEUS_CHECK_OK(r.status());
    sum += r->step_seconds;
  }
  return sum / steps;
}

void RunWorkload(const Workload& w) {
  const model::CostModel cost(w.spec, w.cluster.gpu());
  core::Planner planner(w.cluster, cost);

  const Situation healthy(w.cluster.num_gpus());
  Result<core::PlanResult> base = planner.Plan(healthy, w.global_batch);
  MALLEUS_CHECK_OK(base.status());
  const double base_actual =
      SimulatedSeconds(w, cost, base->plan, healthy);
  const double base_est = base->estimated_full_seconds;
  const int dp = base->plan.dp_degree();

  TablePrinter table(
      StrFormat("Table 3 (%s): slowdown ratios vs the theoretic optimum",
                w.label.c_str()));
  table.SetHeader({"Situation", "R_actual", "R_opt", "1-Ropt/Ract",
                   "R_est", "1-Rest/Ract"});
  for (SituationId id :
       {SituationId::kS1, SituationId::kS2, SituationId::kS3,
        SituationId::kS4, SituationId::kS5, SituationId::kS6}) {
    Result<Situation> s = Situation::Canonical(w.cluster, id);
    MALLEUS_CHECK_OK(s.status());
    core::PlannerOptions opts;
    opts.dp_degree = dp;  // Re-planning keeps the DP degree (footnote 2).
    Result<core::PlanResult> planned = planner.Plan(*s, w.global_batch, opts);
    MALLEUS_CHECK_OK(planned.status());

    const double r_actual =
        SimulatedSeconds(w, cost, planned->plan, *s) / base_actual;
    const double r_opt = s->TheoreticSlowdown();
    const double r_est = planned->estimated_full_seconds / base_est;
    table.AddRow({straggler::SituationName(id),
                  StrFormat("%.2f", r_actual), StrFormat("%.2f", r_opt),
                  StrFormat("%.2f%%", 100.0 * (1.0 - r_opt / r_actual)),
                  StrFormat("%.2f", r_est),
                  StrFormat("%.2f%%", 100.0 * (1.0 - r_est / r_actual))});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace malleus

int main() {
  std::printf("Malleus reproduction: Table 3 (closeness to the theoretic "
              "optimum and cost-model accuracy)\n\n");
  for (const malleus::bench::Workload& w : malleus::bench::AllWorkloads()) {
    malleus::bench::RunWorkload(w);
  }
  malleus::bench::DumpBenchMetrics("table3_optimality");
  return 0;
}
