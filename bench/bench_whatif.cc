// What-if sweep throughput bench: records a 64-GPU S3 run as a bundle,
// loads it back, and answers a 200+-counterfactual grid in one RunWhatIf
// call, reporting counterfactuals/s and the shared SolveCache hit-rate of
// the sweep. The grid excludes capacity-adding counterfactuals
// (add_standby_node) so the ranking isolates causes of loss — the bench
// checks that the top-ranked cause is healing an injected S3 straggler
// and that a repeat sweep renders byte-identical JSON.
//
// Emits BENCH_whatif.json (see bench::WriteBenchJson) with the measured
// throughput, cache traffic, top cause and determinism verdicts, plus the
// planner.solve_seconds histogram quantiles from the global metrics
// registry (the sweep's dominant cost).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "obs/bundle.h"
#include "obs/report.h"
#include "scenario/counterfactual.h"
#include "scenario/scenario.h"
#include "whatif/whatif.h"

namespace malleus {
namespace bench {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The Table 4 S3 case study scaled to the 64-GPU evaluation cluster.
scenario::ScenarioSpec S3Spec64() {
  scenario::ScenarioSpec spec;
  spec.model = "32b";
  spec.nodes = 8;
  spec.gpus_per_node = 8;
  spec.batch = 64;
  spec.steps = 2;
  spec.phases = {"normal", "s3", "normal"};
  spec.source = "bench_whatif S3@64";
  return spec;
}

int Run() {
  // Record the run as a real on-disk bundle and load it back, so the
  // bench exercises the same path malleus_whatif does.
  const scenario::ScenarioSpec spec = S3Spec64();
  std::string bundle_dir = "bench_whatif_bundle";
  if (const char* dir = std::getenv("MALLEUS_BENCH_OUT_DIR");
      dir != nullptr && *dir != '\0') {
    bundle_dir = std::string(dir) + "/" + bundle_dir;
  }
  obs::RunBundle bundle;
  bundle.producer = "bench_whatif";
  bundle.files.push_back(
      {obs::kBundleScenarioName, scenario::SerializeScenario(spec)});
  if (Status s = obs::WriteRunBundle(bundle_dir, bundle); !s.ok()) {
    std::fprintf(stderr, "cannot write bundle: %s\n", s.ToString().c_str());
    return 1;
  }
  Result<obs::RunBundle> loaded = obs::LoadRunBundle(bundle_dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Result<whatif::RecordedRun> run =
      whatif::LoadRecordedRun(*loaded, bundle_dir);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }

  Result<scenario::LabeledSituation> analyzed =
      whatif::AnalyzedSituation(*run);
  if (!analyzed.ok()) {
    std::fprintf(stderr, "%s\n", analyzed.status().ToString().c_str());
    return 1;
  }
  const std::vector<topo::GpuId> injected =
      analyzed->situation.Stragglers();

  // The full grid: removals and dampenings over EVERY GPU plus bandwidth
  // and TP sweeps — 64 + 3*64 + 2 + 4 + 1 = 263 counterfactuals. Rows
  // that ADD capacity beyond the recorded hardware (standby nodes,
  // bandwidth upgrades) are excluded: they measure opportunities, not
  // losses, and would trivially outrank the stragglers the run suffered.
  scenario::DefaultGridOptions gopts;
  gopts.dampen_all_gpus = true;
  gopts.standby_nodes.clear();
  gopts.bandwidth_factors = {0.5};
  const std::vector<scenario::Counterfactual> grid =
      scenario::DefaultCounterfactualGrid(run->resolved.cluster,
                                          analyzed->situation,
                                          run->resolved.net_model, gopts);

  const double t0 = Now();
  Result<obs::AttributionReport> report =
      whatif::RunWhatIf(*run, grid, {});
  const double sweep_seconds = Now() - t0;
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  // Repeat the sweep: the ranked JSON must come out byte-identical.
  Result<obs::AttributionReport> repeat =
      whatif::RunWhatIf(*run, grid, {});
  const bool byte_identical =
      repeat.ok() && obs::RenderAttributionJson(*report) ==
                         obs::RenderAttributionJson(*repeat);

  const int64_t lookups = report->cache_hits + report->cache_misses;
  const double hit_rate =
      lookups > 0 ? static_cast<double>(report->cache_hits) / lookups : 0.0;
  const double per_second = grid.size() / sweep_seconds;

  // The top-ranked cause must heal (or dampen) an injected S3 straggler.
  const obs::AttributionRow& top = report->rows.front();
  bool top_is_injected = false;
  for (topo::GpuId g : injected) {
    if (top.cause == StrFormat("remove_straggler gpu=%d", g) ||
        top.cause.rfind(StrFormat("dampen_straggler gpu=%d ", g), 0) == 0) {
      top_is_injected = true;
    }
  }

  std::printf("what-if sweep: %s / %s, %d GPUs\n",
              run->source.c_str(), report->phase.c_str(),
              run->resolved.cluster.num_gpus());
  std::printf("  counterfactuals      %zu\n", grid.size());
  std::printf("  sweep seconds        %.3f  (%.1f counterfactuals/s)\n",
              sweep_seconds, per_second);
  std::printf("  solve cache          %lld hits / %lld lookups (%.1f%%)\n",
              static_cast<long long>(report->cache_hits),
              static_cast<long long>(lookups), 100.0 * hit_rate);
  std::printf("  baseline step        %.4f s\n",
              report->baseline_step_seconds);
  std::printf("  top cause            %s (%.4f s saved)\n",
              top.cause.c_str(), top.attributed_seconds);
  std::printf("  injected straggler top: %s\n",
              top_is_injected ? "yes" : "NO");
  std::printf("  byte-identical repeat:  %s\n",
              byte_identical ? "yes" : "NO");
  std::printf("%s", obs::RenderAttributionText(*report, 8).c_str());

  // The sweep's dominant cost is planner solves; surface the histogram
  // quantiles the metrics registry collected.
  const obs::HistogramSnapshot solves =
      obs::MetricsRegistry::Global()
          .GetHistogram("planner.solve_seconds")
          ->Snapshot();

  std::string json = "{";
  json += StrFormat("\"bench\":\"whatif\",\"gpus\":%d,",
                    run->resolved.cluster.num_gpus());
  json += StrFormat("\"phase\":\"%s\",", JsonEscape(report->phase).c_str());
  json += StrFormat("\"counterfactuals\":%zu,", grid.size());
  json += StrFormat("\"sweep_seconds\":%.6f,", sweep_seconds);
  json += StrFormat("\"counterfactuals_per_second\":%.3f,", per_second);
  json += StrFormat("\"cache_hits\":%lld,\"cache_misses\":%lld,",
                    static_cast<long long>(report->cache_hits),
                    static_cast<long long>(report->cache_misses));
  json += StrFormat("\"cache_hit_rate\":%.4f,", hit_rate);
  json += StrFormat("\"baseline_step_seconds\":%.6f,",
                    report->baseline_step_seconds);
  json += StrFormat("\"top_cause\":\"%s\",", JsonEscape(top.cause).c_str());
  json += StrFormat("\"top_cause_seconds\":%.6f,", top.attributed_seconds);
  json += StrFormat("\"top_cause_is_injected_straggler\":%s,",
                    top_is_injected ? "true" : "false");
  json += StrFormat("\"byte_identical_repeat\":%s,",
                    byte_identical ? "true" : "false");
  json += StrFormat(
      "\"planner_solve_seconds\":{\"count\":%lld,\"p50\":%s,\"p95\":%s,"
      "\"p99\":%s}}",
      static_cast<long long>(solves.count), JsonNumber(solves.p50).c_str(),
      JsonNumber(solves.p95).c_str(), JsonNumber(solves.p99).c_str());
  WriteBenchJson("whatif", json);

  return (top_is_injected && byte_identical) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace malleus

int main() {
  const int rc = malleus::bench::Run();
  malleus::bench::DumpBenchMetrics("whatif");
  return rc;
}
