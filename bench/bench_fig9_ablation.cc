// Reproduces Figure 9: effectiveness of each non-uniform partitioning
// dimension on the 110B model, under three stragglers of levels 1, 3 and 8
// placed on one, two, or three nodes. Variants:
//   data            - non-uniform training data only,
//   data+layer      - plus non-uniform layer assignment (full lower level),
//   full            - plus non-uniform devices and stages (upper level).
// Reported metric: gap from the theoretic optimum, 1 - T_opt / T_actual.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/planner.h"
#include "sim/pipeline_sim.h"

namespace malleus {
namespace bench {
namespace {

double SimulatedSeconds(const Workload& w, const model::CostModel& cost,
                        const plan::ParallelPlan& p,
                        const straggler::Situation& s) {
  Rng rng(7);
  sim::SimOptions opts;
  double sum = 0.0;
  const int steps = 5;
  for (int i = 0; i < steps; ++i) {
    Result<sim::StepResult> r =
        sim::SimulateStep(w.cluster, cost, p, s, opts, &rng);
    MALLEUS_CHECK_OK(r.status());
    sum += r->step_seconds;
  }
  return sum / steps;
}

struct Variant {
  const char* label;
  bool layers;
  bool devices;
};

void Run() {
  const Workload w = Workload110B();
  const model::CostModel cost(w.spec, w.cluster.gpu());
  core::Planner planner(w.cluster, cost);

  const straggler::Situation healthy(w.cluster.num_gpus());
  Result<core::PlanResult> base = planner.Plan(healthy, w.global_batch);
  MALLEUS_CHECK_OK(base.status());
  const double base_actual = SimulatedSeconds(w, cost, base->plan, healthy);
  const int dp = base->plan.dp_degree();

  // Straggler placements: levels {8, 3, 1} spread over 1 / 2 / 3 nodes.
  const int per_node = w.cluster.gpus_per_node();
  std::vector<std::pair<const char*, straggler::Situation>> scenarios;
  {
    straggler::Situation s(w.cluster.num_gpus());
    s.SetLevel(0, 8);
    s.SetLevel(1, 3);
    s.SetLevel(2, 1);
    scenarios.push_back({"1 node", s});
  }
  {
    straggler::Situation s(w.cluster.num_gpus());
    s.SetLevel(0, 8);
    s.SetLevel(per_node, 3);
    s.SetLevel(per_node + 1, 1);
    scenarios.push_back({"2 nodes", s});
  }
  {
    straggler::Situation s(w.cluster.num_gpus());
    s.SetLevel(0, 8);
    s.SetLevel(per_node, 3);
    s.SetLevel(2 * per_node, 1);
    scenarios.push_back({"3 nodes", s});
  }

  const Variant variants[] = {
      {"data", false, false},
      {"data+layer", true, false},
      {"data+layer+device+stage", true, true},
  };

  TablePrinter table(
      "Figure 9 (110B): gap from theoretic optimum, 1 - T_opt/T_actual");
  table.SetHeader({"Non-uniform dims", "1 node", "2 nodes", "3 nodes"});
  for (const Variant& v : variants) {
    std::vector<std::string> row = {v.label};
    for (const auto& [label, situation] : scenarios) {
      core::PlannerOptions opts;
      opts.dp_degree = dp;
      opts.nonuniform_data = true;
      opts.nonuniform_layers = v.layers;
      opts.nonuniform_devices = v.devices;
      Result<core::PlanResult> planned =
          planner.Plan(situation, w.global_batch, opts);
      if (!planned.ok()) {
        row.push_back("infeasible");
        continue;
      }
      const double actual =
          SimulatedSeconds(w, cost, planned->plan, situation);
      const double opt = base_actual * situation.TheoreticSlowdown();
      row.push_back(StrFormat("%.1f%% (%.1fs)",
                              100.0 * (1.0 - opt / actual), actual));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): the lower level alone (data / data+layer)\n"
      "suffices when stragglers share one node (~10%% gap) but degrades to\n"
      "20-40%% across multiple nodes; adding non-uniform devices+stages\n"
      "recovers the gap to <~10%%.\n");
}

}  // namespace
}  // namespace bench
}  // namespace malleus

int main() {
  std::printf("Malleus reproduction: Figure 9 ablation\n\n");
  malleus::bench::Run();
  malleus::bench::DumpBenchMetrics("fig9_ablation");
  return 0;
}
