// Reproduces Figure 8: Malleus vs the Oobleck-like fault-tolerant baseline
// on the 32B model across the straggler trace. Oobleck treats stragglers as
// faults: it live-migrates only when an applicable pipeline template
// exists, restarts otherwise, and pays a constant template overhead even
// with no stragglers.

#include <cstdio>

#include "baselines/trace_runner.h"
#include "bench_util.h"
#include "common/table.h"

namespace malleus {
namespace bench {
namespace {

void Run() {
  const Workload w = Workload32B();
  const model::CostModel cost(w.spec, w.cluster.gpu());
  const auto trace = straggler::StandardTrace(/*steps_per_phase=*/8);

  baselines::OobleckBaseline oobleck(w.cluster, cost,
                                     baselines::OobleckOptions());
  baselines::MalleusFramework malleus_fw(w.cluster, cost);

  Result<std::vector<baselines::PhaseStats>> ob =
      baselines::RunTrace(&oobleck, w.cluster, trace, w.global_batch);
  MALLEUS_CHECK_OK(ob.status());
  Result<std::vector<baselines::PhaseStats>> ml =
      baselines::RunTrace(&malleus_fw, w.cluster, trace, w.global_batch);
  MALLEUS_CHECK_OK(ml.status());

  TablePrinter table("Figure 8 (32B): Oobleck vs Malleus along the trace");
  table.SetHeader({"Phase", "Oobleck s/step", "transition",
                   "Malleus s/step", "transition", "improvement"});
  for (size_t i = 0; i < ob->size(); ++i) {
    const baselines::PhaseStats& o = (*ob)[i];
    const baselines::PhaseStats& m = (*ml)[i];
    auto transition = [](const baselines::PhaseStats& p) -> std::string {
      if (p.restart_seconds > 0) {
        return StrFormat("RESTART %.0fs", p.restart_seconds);
      }
      if (p.migration_seconds > 0) {
        return StrFormat("migrate %.1fs", p.migration_seconds);
      }
      return "-";
    };
    table.AddRow({straggler::SituationName(o.situation),
                  StrFormat("%.1f", o.mean_step_seconds), transition(o),
                  StrFormat("%.1f", m.mean_step_seconds), transition(m),
                  StrFormat("%.2fx",
                            o.mean_step_seconds / m.mean_step_seconds)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): Oobleck is 1.8-2.5x slower per step even\n"
      "when healthy (fault-tolerance templates), migrates on early\n"
      "straggler transitions, but must RESTART when nodes recover or no\n"
      "template fits (S3->S4, S4->S5, S5->S6, S6->Normal).\n");
}

}  // namespace
}  // namespace bench
}  // namespace malleus

int main() {
  std::printf("Malleus reproduction: Figure 8 Oobleck comparison\n\n");
  malleus::bench::Run();
  malleus::bench::DumpBenchMetrics("fig8_oobleck");
  return 0;
}
