// Reproduces Table 5 (Appendix A.2): wall-time breakdown of the planning
// algorithm at 64 GPUs (the S3 scenario) and at 1024 GPUs (128 nodes, ~3%
// stragglers, global batch linearly scaled to 1024), split into GPU
// grouping / pipeline division / group ordering / work assignment.

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "core/planner.h"

namespace malleus {
namespace bench {
namespace {

struct Scenario {
  std::string label;
  topo::ClusterSpec cluster;
  straggler::Situation situation;
  int64_t global_batch;
  int dp_degree;
};

core::PlannerTimings RunScenario(const Scenario& sc, bool* exact_hint) {
  const model::CostModel cost(model::ModelSpec::Llama110B(),
                              sc.cluster.gpu());
  core::Planner planner(sc.cluster, cost);
  core::PlannerOptions opts;
  opts.dp_degree = sc.dp_degree;
  Result<core::PlanResult> r =
      planner.Plan(sc.situation, sc.global_batch, opts);
  MALLEUS_CHECK_OK(r.status());
  (void)exact_hint;
  return r->timings;
}

void Run() {
  std::vector<Scenario> scenarios;
  {
    Scenario sc{"64 GPUs (S3)", topo::ClusterSpec::A800Cluster(8),
                straggler::Situation(64), 64, 2};
    sc.situation = straggler::Situation::Canonical(sc.cluster,
                                                   straggler::SituationId::kS3)
                       .ValueOrDie();
    scenarios.push_back(std::move(sc));
  }
  {
    // 128 nodes, 32 stragglers (~3% of the fleet) of mixed levels spread
    // over 32 distinct nodes; B scaled linearly to 1024 (4M tokens).
    Scenario sc{"1024 GPUs (32 stragglers)",
                topo::ClusterSpec::A800Cluster(128),
                straggler::Situation(1024), 1024, 8};
    for (int i = 0; i < 32; ++i) {
      const int level = i < 16 ? 1 : (i < 24 ? 2 : 3);
      sc.situation.SetLevel(i * sc.cluster.gpus_per_node(), level);
    }
    scenarios.push_back(std::move(sc));
  }

  TablePrinter table("Table 5: planning time breakdown (seconds)");
  table.SetHeader({"Scenario", "GPU Grouping", "Pipeline Division",
                   "Group Ordering", "Work Assignment", "Total"});
  for (const Scenario& sc : scenarios) {
    const core::PlannerTimings t = RunScenario(sc, nullptr);
    table.AddRow({sc.label, StrFormat("%.3fs", t.grouping_seconds),
                  StrFormat("%.3fs", t.division_seconds),
                  StrFormat("%.3fs", t.ordering_seconds),
                  StrFormat("%.3fs", t.assignment_seconds),
                  StrFormat("%.3fs", t.total_seconds)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): grouping is negligible, the Eq. (4)\n"
      "division dominates and grows with scale, ordering and assignment\n"
      "stay small; the whole run completes within one-two iterations.\n"
      "(Absolute values differ from the paper's PuLP/Pyomo stack; the\n"
      "1024-GPU division falls back to local search past the node budget,\n"
      "mirroring how the paper bounds MINLP time.)\n");
}

}  // namespace
}  // namespace bench
}  // namespace malleus

int main() {
  std::printf("Malleus reproduction: Table 5 planner scalability\n\n");
  malleus::bench::Run();
  malleus::bench::DumpBenchMetrics("table5_scalability");
  return 0;
}
