// Shared helpers for the paper-reproduction benchmark harnesses.

#ifndef MALLEUS_BENCH_BENCH_UTIL_H_
#define MALLEUS_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "baselines/deepspeed.h"
#include "baselines/malleus_adapter.h"
#include "baselines/megatron.h"
#include "baselines/oobleck.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "model/cost_model.h"
#include "net/fabric.h"
#include "obs/metrics.h"
#include "topology/cluster.h"

namespace malleus {
namespace bench {

/// One evaluation workload of S7.1: a model plus the cluster that trains it
/// (32B on 32 GPUs; 70B and 110B on 64 GPUs).
struct Workload {
  std::string label;
  model::ModelSpec spec;
  topo::ClusterSpec cluster;
  int64_t global_batch = 64;
};

inline Workload Workload32B() {
  return {"32B", model::ModelSpec::Llama32B(),
          topo::ClusterSpec::A800Cluster(4), 64};
}
inline Workload Workload70B() {
  return {"70B", model::ModelSpec::Llama70B(),
          topo::ClusterSpec::A800Cluster(8), 64};
}
inline Workload Workload110B() {
  return {"110B", model::ModelSpec::Llama110B(),
          topo::ClusterSpec::A800Cluster(8), 64};
}

inline std::vector<Workload> AllWorkloads() {
  return {Workload32B(), Workload70B(), Workload110B()};
}

/// The competitor set of Table 2, in the paper's row order.
inline std::vector<std::unique_ptr<baselines::TrainingFramework>>
MakeCompetitors(const topo::ClusterSpec& cluster,
                const model::CostModel& cost) {
  std::vector<std::unique_ptr<baselines::TrainingFramework>> out;
  {
    baselines::DeepSpeedOptions o;
    out.push_back(
        std::make_unique<baselines::DeepSpeedBaseline>(cluster, cost, o));
  }
  {
    baselines::MegatronOptions o;
    out.push_back(
        std::make_unique<baselines::MegatronBaseline>(cluster, cost, o));
  }
  {
    baselines::DeepSpeedOptions o;
    o.with_restart = true;
    o.restart_cost.framework_init_seconds = 40.0;
    out.push_back(
        std::make_unique<baselines::DeepSpeedBaseline>(cluster, cost, o));
  }
  {
    baselines::MegatronOptions o;
    o.with_restart = true;
    out.push_back(
        std::make_unique<baselines::MegatronBaseline>(cluster, cost, o));
  }
  out.push_back(std::make_unique<baselines::MalleusFramework>(cluster, cost));
  return out;
}

/// "2.63x"-style improvement formatting.
inline std::string Improvement(double baseline_seconds,
                               double malleus_seconds) {
  return StrFormat("%.2fx", baseline_seconds / malleus_seconds);
}

/// Geometric mean.
inline double GeoMean(const std::vector<double>& values) {
  MALLEUS_CHECK(!values.empty());
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / values.size());
}

/// Writes a bench's machine-readable result JSON to BENCH_<name>.json in
/// the working directory (or under $MALLEUS_BENCH_OUT_DIR when set), so
/// harness runs leave a stable artifact next to the binary output.
/// The benches printf-format their numbers; a NaN/Inf slipping through
/// (e.g. a 0/0 improvement ratio on a failed baseline) would make the
/// whole artifact unparsable, so non-finite number tokens are rewritten
/// to `null` before the file is written.
inline void WriteBenchJson(const char* bench_name, const std::string& json) {
  std::string path;
  if (const char* dir = std::getenv("MALLEUS_BENCH_OUT_DIR");
      dir != nullptr && *dir != '\0') {
    path = std::string(dir) + "/";
  }
  path += StrFormat("BENCH_%s.json", bench_name);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write bench result to %s\n", path.c_str());
    return;
  }
  const std::string sane = JsonSanitizeNonFinite(json);
  std::fwrite(sane.data(), 1, sane.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

/// Attaches the global metrics snapshot to the bench's machine-readable
/// output. Call at the end of main():
///   - MALLEUS_BENCH_METRICS_OUT=FILE writes
///     {"bench":"<name>","net_model":"...","metrics":{...}} JSON to FILE
///     (planner solve-time histograms, solver node counts, engine
///     replan/migration counters; under the flow net model additionally
///     "net.*" fabric metrics — per-link total bytes and peak utilization
///     plus flow-completion-time histograms);
///   - MALLEUS_BENCH_METRICS=1 prints the text dump to stderr.
inline void DumpBenchMetrics(const char* bench_name) {
  const auto& registry = obs::MetricsRegistry::Global();
  if (const char* path = std::getenv("MALLEUS_BENCH_METRICS_OUT");
      path != nullptr && *path != '\0') {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write bench metrics to %s\n", path);
    } else {
      const std::string json = StrFormat(
          "{\"bench\":\"%s\",\"net_model\":\"%s\",\"metrics\":%s}\n",
          JsonEscape(bench_name).c_str(),
          net::NetModelName(net::DefaultNetModel()),
          registry.ToJson().c_str());
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    }
  }
  if (const char* flag = std::getenv("MALLEUS_BENCH_METRICS");
      flag != nullptr && std::strcmp(flag, "1") == 0) {
    std::fprintf(stderr, "-- %s metrics --\n%s", bench_name,
                 registry.ToText().c_str());
  }
}

}  // namespace bench
}  // namespace malleus

#endif  // MALLEUS_BENCH_BENCH_UTIL_H_
