// Serving bench: drives the planner-as-a-service core with plan/replan
// traffic on the 64-GPU S3 scenario (70B over 8 nodes) and reports
// latency percentiles, sustained warm re-plan throughput, and the
// cold-vs-warm-cache restart comparison.
//
// Two measurements:
//   1. Warm re-plan throughput: closed-loop clients (one per worker) each
//      issue identical `replan` requests against a warmed session;
//      p50/p99 latency and requests/s, at --threads and at one worker.
//      Every response must be byte-identical across both runs (the
//      protocol's determinism contract).
//   2. Restart: the first server's cache is saved, a new server
//      --cache-load's it, and its *first* planning request after register
//      is timed — the same full `plan` request the cold server answered
//      (after a restart there is no prior plan to pin a DP degree from,
//      so a fresh `plan` is exactly what a client issues).
//      restart_speedup = cold_plan / warm_first_plan (target: >= 50x).
//
// Emits BENCH_serve.json with all of the above plus pass/fail verdicts
// (>= 500 req/s sustained, >= 50x restart speedup).
//
//   $ ./bench/bench_serve [--threads=N] [--requests=N]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "common/table.h"
#include "bench_util.h"
#include "serve/json.h"
#include "serve/server.h"

namespace malleus {
namespace bench {
namespace {

constexpr char kScenario[] =
    "model = 70b\\nnodes = 8\\nbatch = 64\\nphase = s3";

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string Line(const char* method, const std::string& params) {
  // A fixed request id keeps full response lines byte-comparable across
  // runs (ids are client-chosen; the server does not require uniqueness).
  return StrFormat("{\"v\":1,\"id\":7,\"method\":\"%s\",\"params\":%s}",
                   method, params.c_str());
}

std::string RegisterLine() {
  return Line("register", StrFormat("{\"name\":\"c64\",\"scenario\":\"%s\"}",
                                    kScenario));
}

// Expects an ok response; aborts loudly otherwise so a broken server
// cannot produce plausible-looking numbers.
std::string MustOk(serve::Server* server, const std::string& line) {
  std::string response = server->Handle(line);
  if (response.find("\"ok\":true") == std::string::npos) {
    std::fprintf(stderr, "request failed:\n  %s\n  %s\n", line.c_str(),
                 response.c_str());
    std::exit(1);
  }
  return response;
}

struct LoadResult {
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::set<std::string> distinct_responses;
};

// Closed-loop load: `clients` threads each issue `per_client` identical
// synchronous requests; latencies are pooled.
LoadResult RunLoad(serve::Server* server, const std::string& line,
                   int clients, int per_client) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::set<std::string>> responses(clients);
  const double t0 = Now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([server, &line, &latencies, &responses, c,
                          per_client] {
      for (int i = 0; i < per_client; ++i) {
        const double start = Now();
        std::string response = server->Handle(line);
        latencies[c].push_back(Now() - start);
        responses[c].insert(std::move(response));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = Now() - t0;

  LoadResult out;
  std::vector<double> all;
  for (const auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  out.throughput_rps = static_cast<double>(all.size()) / elapsed;
  out.p50_ms = all[all.size() / 2] * 1e3;
  out.p99_ms = all[std::min(all.size() - 1, all.size() * 99 / 100)] * 1e3;
  for (auto& per_thread : responses) {
    out.distinct_responses.insert(per_thread.begin(), per_thread.end());
  }
  return out;
}

int Main(int argc, char** argv) {
  int threads = 4;
  int requests = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::max(1, std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = std::max(threads, std::atoi(argv[i] + 11));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  const std::string cache_path =
      StrFormat("%s/bench_serve.cache",
                std::getenv("TMPDIR") != nullptr ? std::getenv("TMPDIR")
                                                 : "/tmp");
  std::remove(cache_path.c_str());

  const std::string plan_line =
      Line("plan", "{\"cluster\":\"c64\",\"situation\":\"s3\"}");
  const std::string replan_line =
      Line("replan", "{\"cluster\":\"c64\",\"situation\":\"s3\"}");

  // ---- Server A: cold plan, then sustained warm re-plan load. ----
  serve::ServerOptions options;
  options.num_workers = threads;
  options.planner_threads = 1;
  options.max_queue = 256;
  options.cache_save_path = cache_path;
  double cold_plan_seconds;
  std::string cold_plan_response;
  LoadResult warm_loaded;
  LoadResult warm_single;
  {
    serve::Server server(options);
    MALLEUS_CHECK(server.Start().ok());
    MustOk(&server, RegisterLine());
    const double t0 = Now();
    cold_plan_response = MustOk(&server, plan_line);
    cold_plan_seconds = Now() - t0;

    for (int i = 0; i < 16; ++i) MustOk(&server, replan_line);  // Warmup.
    warm_loaded = RunLoad(&server, replan_line, threads,
                          (requests + threads - 1) / threads);
    MALLEUS_CHECK(server.Shutdown().ok());  // Persists the cache.
  }

  // Same traffic at one worker; responses must match byte for byte.
  {
    serve::ServerOptions single = options;
    single.num_workers = 1;
    single.cache_save_path.clear();
    serve::Server server(single);
    MALLEUS_CHECK(server.Start().ok());
    MustOk(&server, RegisterLine());
    MustOk(&server, Line("plan", "{\"cluster\":\"c64\",\"situation\":\"s3\"}"));
    warm_single = RunLoad(&server, replan_line, 1, requests);
  }
  std::set<std::string> all_responses = warm_loaded.distinct_responses;
  all_responses.insert(warm_single.distinct_responses.begin(),
                       warm_single.distinct_responses.end());
  const bool identical = all_responses.size() == 1;

  // ---- Server B: restarted with --cache-load; time the FIRST plan. ----
  // The same request server A answered cold: after a restart there is no
  // prior plan to pin, so a full `plan` is what a client issues, and the
  // warm-loaded cache must answer it from memoized solves.
  double warm_first_plan_seconds;
  bool warm_registered;
  bool warm_plan_matches;
  {
    serve::ServerOptions warm = options;
    warm.cache_save_path.clear();
    warm.cache_load_path = cache_path;
    serve::Server server(warm);
    MALLEUS_CHECK(server.Start().ok());
    const std::string reg = MustOk(&server, RegisterLine());
    warm_registered = reg.find("\"warm\":true") != std::string::npos;
    const double t0 = Now();
    const std::string warm_plan_response = MustOk(&server, plan_line);
    warm_first_plan_seconds = Now() - t0;
    // The cache must change latency, never the answer.
    warm_plan_matches = warm_plan_response == cold_plan_response;
  }
  const double restart_speedup = cold_plan_seconds / warm_first_plan_seconds;
  const bool throughput_ok = warm_loaded.throughput_rps >= 500.0;
  const bool speedup_ok = restart_speedup >= 50.0;

  TablePrinter table("serve bench (70b, 8x8, s3)");
  table.SetHeader({"metric", "value"});
  table.AddRow({"cold plan", StrFormat("%.3fs", cold_plan_seconds)});
  table.AddRow({"warm first plan after restart",
                StrFormat("%.6fs", warm_first_plan_seconds)});
  table.AddRow({"restart speedup", StrFormat("%.0fx %s", restart_speedup,
                                             speedup_ok ? "(pass)"
                                                        : "(FAIL)")});
  table.AddRow({StrFormat("throughput @%d workers", threads),
                StrFormat("%.0f req/s %s", warm_loaded.throughput_rps,
                          throughput_ok ? "(pass)" : "(FAIL)")});
  table.AddRow({"throughput @1 worker",
                StrFormat("%.0f req/s", warm_single.throughput_rps)});
  table.AddRow({StrFormat("latency p50/p99 @%d workers", threads),
                StrFormat("%.2f/%.2f ms", warm_loaded.p50_ms,
                          warm_loaded.p99_ms)});
  table.AddRow({"responses byte-identical", identical ? "yes" : "NO"});
  table.AddRow({"restart cache warm-loaded", warm_registered ? "yes" : "NO"});
  table.AddRow({"warm plan matches cold plan",
                warm_plan_matches ? "yes" : "NO"});
  table.Print();

  std::string json = StrFormat(
      "{\"scenario\":\"70b-8x8-s3\",\"requests\":%d,\"load\":["
      "{\"workers\":%d,\"throughput_rps\":%.1f,\"p50_ms\":%.3f,"
      "\"p99_ms\":%.3f},"
      "{\"workers\":1,\"throughput_rps\":%.1f,\"p50_ms\":%.3f,"
      "\"p99_ms\":%.3f}],"
      "\"identical_responses\":%s,"
      "\"cache\":{\"cold_plan_seconds\":%.6f,"
      "\"warm_first_plan_seconds\":%.6f,\"restart_speedup\":%.1f,"
      "\"warm_loaded\":%s,\"warm_plan_matches_cold\":%s},"
      "\"passes\":{\"throughput_500rps\":%s,\"restart_speedup_50x\":%s}}\n",
      requests, threads, warm_loaded.throughput_rps, warm_loaded.p50_ms,
      warm_loaded.p99_ms, warm_single.throughput_rps, warm_single.p50_ms,
      warm_single.p99_ms, identical ? "true" : "false", cold_plan_seconds,
      warm_first_plan_seconds, restart_speedup,
      warm_registered ? "true" : "false",
      warm_plan_matches ? "true" : "false",
      throughput_ok ? "true" : "false", speedup_ok ? "true" : "false");
  WriteBenchJson("serve", json);

  std::remove(cache_path.c_str());
  return (identical && warm_registered && warm_plan_matches) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace malleus

int main(int argc, char** argv) { return malleus::bench::Main(argc, argv); }
