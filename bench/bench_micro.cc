// Micro-benchmarks (google-benchmark) of the planning and simulation
// building blocks: LP/ILP solvers, bottleneck allocation, the Eq. (4)
// division, GPU grouping, full planning runs, step simulation, and
// migration diffing. Also benchmarks the DP-degree-enumeration planner
// mode (the footnote-2 extension) against the pinned-DP mode.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/migration.h"
#include "core/planner.h"
#include "sim/pipeline_sim.h"
#include "solver/division.h"
#include "solver/ilp.h"
#include "solver/lp.h"
#include "solver/minmax.h"

namespace malleus {
namespace {

void BM_SolveLp(benchmark::State& state) {
  solver::LinearProgram lp = solver::LinearProgram::Create(8);
  Rng rng(1);
  for (int j = 0; j < 8; ++j) lp.objective[j] = rng.Uniform(-1, 1);
  for (int c = 0; c < 6; ++c) {
    std::vector<double> row(8);
    for (double& v : row) v = rng.Uniform(0, 1);
    lp.AddLessEqual(std::move(row), 4.0);
  }
  lp.upper_bounds.assign(8, 3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::SolveLp(lp));
  }
}
BENCHMARK(BM_SolveLp);

void BM_SolveIlp(benchmark::State& state) {
  solver::IntegerProgram ip = solver::IntegerProgram::Create(6);
  Rng rng(2);
  for (int j = 0; j < 6; ++j) ip.lp.objective[j] = -rng.Uniform(1, 5);
  std::vector<double> row(6);
  for (double& v : row) v = rng.Uniform(1, 3);
  ip.lp.AddLessEqual(std::move(row), 10.0);
  ip.lp.upper_bounds.assign(6, 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::SolveIlp(ip));
  }
}
BENCHMARK(BM_SolveIlp);

void BM_BottleneckAllocation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> rates(n);
  Rng rng(3);
  for (double& r : rates) r = rng.Uniform(0.2, 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::SolveBottleneckAllocation(rates, 256));
  }
}
BENCHMARK(BM_BottleneckAllocation)->Arg(4)->Arg(16)->Arg(64);

void BM_Division(benchmark::State& state) {
  solver::DivisionProblem problem;
  problem.num_pipelines = 4;
  problem.num_fast_groups = 24;
  problem.fast_rate = 0.15;
  const int slow = static_cast<int>(state.range(0));
  for (int i = 0; i < slow; ++i) {
    problem.slow_rates.push_back(i % 2 == 0 ? 2.6 : 3.8);
  }
  problem.total_microbatches = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::SolveDivision(problem));
  }
}
BENCHMARK(BM_Division)->Arg(2)->Arg(6)->Arg(10);

void BM_Grouping(benchmark::State& state) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(8);
  const model::CostModel cost(model::ModelSpec::Llama70B(), cluster.gpu());
  straggler::Situation s =
      straggler::Situation::Canonical(cluster, straggler::SituationId::kS5)
          .ValueOrDie();
  core::GroupingOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::GroupGpus(cluster, cost, s, opts));
  }
}
BENCHMARK(BM_Grouping);

void PlannerBench(benchmark::State& state, straggler::SituationId id,
                  int dp_degree) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(8);
  const model::CostModel cost(model::ModelSpec::Llama110B(), cluster.gpu());
  core::Planner planner(cluster, cost);
  straggler::Situation s =
      straggler::Situation::Canonical(cluster, id).ValueOrDie();
  core::PlannerOptions opts;
  opts.dp_degree = dp_degree;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.Plan(s, 64, opts));
  }
}

void BM_PlannerHealthyPinnedDp(benchmark::State& state) {
  PlannerBench(state, straggler::SituationId::kNormal, 2);
}
BENCHMARK(BM_PlannerHealthyPinnedDp);

void BM_PlannerS4PinnedDp(benchmark::State& state) {
  PlannerBench(state, straggler::SituationId::kS4, 2);
}
BENCHMARK(BM_PlannerS4PinnedDp);

// Footnote-2 ablation: enumerating the DP degree instead of keeping it.
void BM_PlannerS4AutoDp(benchmark::State& state) {
  PlannerBench(state, straggler::SituationId::kS4, 0);
}
BENCHMARK(BM_PlannerS4AutoDp);

void BM_SimulateStep(benchmark::State& state) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(8);
  const model::CostModel cost(model::ModelSpec::Llama110B(), cluster.gpu());
  core::Planner planner(cluster, cost);
  const straggler::Situation healthy(cluster.num_gpus());
  auto planned = planner.Plan(healthy, 64);
  MALLEUS_CHECK_OK(planned.status());
  Rng rng(4);
  sim::SimOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::SimulateStep(
        cluster, cost, planned->plan, healthy, opts, &rng));
  }
}
BENCHMARK(BM_SimulateStep);

void BM_MigrationDiff(benchmark::State& state) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(8);
  const model::CostModel cost(model::ModelSpec::Llama110B(), cluster.gpu());
  core::Planner planner(cluster, cost);
  const straggler::Situation healthy(cluster.num_gpus());
  auto from = planner.Plan(healthy, 64);
  MALLEUS_CHECK_OK(from.status());
  straggler::Situation s =
      straggler::Situation::Canonical(cluster, straggler::SituationId::kS4)
          .ValueOrDie();
  core::PlannerOptions opts;
  opts.dp_degree = from->plan.dp_degree();
  auto to = planner.Plan(s, 64, opts);
  MALLEUS_CHECK_OK(to.status());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ComputeMigration(from->plan, to->plan, cost));
  }
}
BENCHMARK(BM_MigrationDiff);

}  // namespace
}  // namespace malleus

BENCHMARK_MAIN();
