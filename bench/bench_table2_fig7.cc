// Reproduces Table 2 + Figure 7: end-to-end per-step time of every
// competitor across the straggler trace Normal -> S1 -> ... -> S6 -> Normal
// for the 32B / 70B / 110B models, with transition overheads (restart /
// migration) and the healthy-cluster MFU.

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "baselines/trace_runner.h"
#include "bench_util.h"
#include "common/table.h"

namespace malleus {
namespace bench {
namespace {

using baselines::PhaseStats;
using straggler::SituationId;

constexpr SituationId kStragglerPhases[] = {
    SituationId::kS1, SituationId::kS2, SituationId::kS3,
    SituationId::kS4, SituationId::kS5, SituationId::kS6};

struct FrameworkRun {
  std::string name;
  std::vector<PhaseStats> phases;  // Normal, S1..S6, Normal.
  double normal_seconds = 0.0;
  double mfu = 0.0;
  std::map<SituationId, double> phase_seconds;
};

void PrintFigure7(const Workload& w, const std::vector<FrameworkRun>& runs) {
  std::printf("-- Figure 7 (%s): per-step time along the trace --\n",
              w.label.c_str());
  for (const FrameworkRun& run : runs) {
    std::printf("%-24s :", run.name.c_str());
    for (const PhaseStats& phase : run.phases) {
      std::printf(" [%s", straggler::SituationName(phase.situation));
      if (phase.restart_seconds > 0) {
        std::printf(" restart=%.0fs", phase.restart_seconds);
      }
      if (phase.migration_seconds > 0) {
        std::printf(" migr=%.1fs", phase.migration_seconds);
      }
      std::printf("]");
      for (double t : phase.step_seconds) std::printf(" %.1f", t);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void RunWorkload(const Workload& w) {
  const model::CostModel cost(w.spec, w.cluster.gpu());
  std::printf("== Workload %s: %s on %s ==\n\n", w.label.c_str(),
              cost.spec().ToString().c_str(), w.cluster.ToString().c_str());

  auto competitors = MakeCompetitors(w.cluster, cost);
  const auto trace = straggler::StandardTrace(/*steps_per_phase=*/8);

  std::vector<FrameworkRun> runs;
  for (auto& fw : competitors) {
    Result<std::vector<PhaseStats>> phases =
        baselines::RunTrace(fw.get(), w.cluster, trace, w.global_batch);
    if (!phases.ok()) {
      std::printf("%s: trace failed: %s\n", fw->name().c_str(),
                  phases.status().ToString().c_str());
      continue;
    }
    FrameworkRun run;
    run.name = fw->name();
    run.phases = std::move(phases).ValueOrDie();
    run.normal_seconds = run.phases.front().mean_step_seconds;
    run.mfu =
        cost.Mfu(run.normal_seconds, static_cast<int>(w.global_batch),
                 w.cluster.num_gpus());
    for (const PhaseStats& p : run.phases) {
      // Keep the later occurrence only for the duplicated Normal phase.
      run.phase_seconds[p.situation] = p.mean_step_seconds;
    }
    run.phase_seconds[SituationId::kNormal] = run.normal_seconds;
    runs.push_back(std::move(run));
  }

  PrintFigure7(w, runs);

  // Table 2 block for this model.
  const FrameworkRun* malleus = nullptr;
  for (const FrameworkRun& r : runs) {
    if (r.name == "Malleus") malleus = &r;
  }
  if (malleus == nullptr) {
    std::printf("Malleus trace failed for %s; skipping its Table 2 block\n",
                w.label.c_str());
    return;
  }

  TablePrinter table(StrFormat("Table 2 (%s): avg step seconds "
                               "(improvement of Malleus in parens)",
                               w.label.c_str()));
  std::vector<std::string> header = {"Framework", "Normal (Time, MFU)"};
  for (SituationId id : kStragglerPhases) {
    header.push_back(straggler::SituationName(id));
  }
  header.push_back("Avg. Improv.");
  table.SetHeader(std::move(header));

  for (const FrameworkRun& run : runs) {
    std::vector<std::string> row = {
        run.name, StrFormat("%.1f, %.1f%%", run.normal_seconds,
                            100.0 * run.mfu)};
    std::vector<double> improvements;
    for (SituationId id : kStragglerPhases) {
      const double t = run.phase_seconds.at(id);
      if (&run == malleus) {
        row.push_back(StrFormat("%.1f", t));
      } else {
        const double imp = t / malleus->phase_seconds.at(id);
        improvements.push_back(imp);
        row.push_back(StrFormat("%.1f (%.2fx)", t, imp));
      }
    }
    row.push_back(&run == malleus ? "-"
                                  : StrFormat("%.2fx",
                                              GeoMean(improvements)));
    table.AddRow(std::move(row));
  }

  // Theoretic optimum row (Table 2's last row).
  std::vector<std::string> opt_row = {"Theoretic Opt.", "-"};
  for (SituationId id : kStragglerPhases) {
    Result<straggler::Situation> s =
        straggler::Situation::Canonical(w.cluster, id);
    MALLEUS_CHECK_OK(s.status());
    opt_row.push_back(StrFormat(
        "%.1f", malleus->normal_seconds * s->TheoreticSlowdown()));
  }
  opt_row.push_back("-");
  table.AddSeparator();
  table.AddRow(std::move(opt_row));
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace malleus

int main() {
  std::printf("Malleus reproduction: Table 2 + Figure 7\n"
              "(simulated cluster; shapes, not absolute numbers, are the "
              "claim)\n\n");
  for (const malleus::bench::Workload& w : malleus::bench::AllWorkloads()) {
    malleus::bench::RunWorkload(w);
  }
  malleus::bench::DumpBenchMetrics("table2_fig7");
  return 0;
}
