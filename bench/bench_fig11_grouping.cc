// Reproduces Figure 11 (Appendix B.7): effectiveness of the Theorem 2
// estimate for choosing among grouping candidates after splitting.
//
// Setup: 110B over 64 GPUs; node 0 hosts three stragglers with rates 2.57,
// 5.42 and 12.53. After isolating the heaviest straggler, the remaining 7
// GPUs can be grouped into blocks of {1, 2, 4} in several contiguous ways
// (Proposition 4). For representative candidates we report the Theorem 2
// relative time estimate (inverse total capacity, normalized) and the
// actual simulated step time - the correlation must be monotone so the
// estimate picks the genuinely best grouping.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/orchestration.h"
#include "core/work_assignment.h"
#include "sim/pipeline_sim.h"

namespace malleus {
namespace bench {
namespace {

// Builds a GroupingResult with `node0_sizes` contiguous blocks over node
// 0's rate-sorted GPUs and TP-8 groups on every other node.
core::GroupingResult MakeGrouping(const topo::ClusterSpec& cluster,
                                  const model::CostModel& cost,
                                  const straggler::Situation& s,
                                  const std::vector<int>& node0_sizes) {
  core::GroupingResult out;
  std::vector<topo::GpuId> node0 = cluster.GpusOnNode(0);
  std::sort(node0.begin(), node0.end(), [&](topo::GpuId a, topo::GpuId b) {
    return s.rate(a) > s.rate(b);
  });
  size_t pos = 0;
  for (int size : node0_sizes) {
    plan::TpGroup g;
    std::vector<double> xs;
    for (int i = 0; i < size; ++i) {
      g.gpus.push_back(node0[pos + i]);
      xs.push_back(s.rate(node0[pos + i]));
    }
    pos += size;
    out.rates.push_back(cost.GroupRate(xs));
    out.groups.push_back(std::move(g));
  }
  for (topo::NodeId n = 1; n < cluster.num_nodes(); ++n) {
    plan::TpGroup g;
    std::vector<double> xs;
    for (topo::GpuId id : cluster.GpusOnNode(n)) {
      g.gpus.push_back(id);
      xs.push_back(s.rate(id));
    }
    out.rates.push_back(cost.GroupRate(xs));
    out.groups.push_back(std::move(g));
  }
  return out;
}

// Orchestrates + assigns work for a fixed grouping and simulates the step.
Result<double> SimulateGrouping(const topo::ClusterSpec& cluster,
                                const model::CostModel& cost,
                                const straggler::Situation& s,
                                const core::GroupingResult& grouping,
                                int64_t global_batch) {
  const int b = 1;
  const int dp = 2;
  core::OrchestrationOptions oopts;
  Result<core::OrchestrationResult> orch =
      core::Orchestrate(grouping, cost, b, dp, global_batch / b, oopts);
  MALLEUS_RETURN_NOT_OK(orch.status());
  std::vector<double> bottlenecks;
  for (const auto& pipe : orch->pipelines) {
    bottlenecks.push_back(pipe.bottleneck);
  }
  Result<std::vector<int64_t>> data =
      core::AssignData(bottlenecks, global_batch / b, true);
  MALLEUS_RETURN_NOT_OK(data.status());

  plan::ParallelPlan p;
  p.micro_batch_size = b;
  p.global_batch = global_batch;
  for (int i = 0; i < dp; ++i) {
    plan::Pipeline pipe;
    pipe.num_microbatches = (*data)[i];
    const core::OrchestratedPipeline& op = orch->pipelines[i];
    for (size_t j = 0; j < op.group_indices.size(); ++j) {
      plan::Stage stage;
      stage.group = grouping.groups[op.group_indices[j]];
      stage.num_layers = op.layers[j];
      pipe.stages.push_back(std::move(stage));
    }
    p.pipelines.push_back(std::move(pipe));
  }
  for (int g : orch->removed_groups) {
    const plan::TpGroup& group = grouping.groups[g];
    p.standby_gpus.insert(p.standby_gpus.end(), group.gpus.begin(),
                          group.gpus.end());
  }
  MALLEUS_RETURN_NOT_OK(p.Validate(cluster, cost));

  Rng rng(11);
  sim::SimOptions opts;
  opts.timing_noise_stddev = 0.0;
  Result<sim::StepResult> step =
      sim::SimulateStep(cluster, cost, p, s, opts, &rng);
  MALLEUS_RETURN_NOT_OK(step.status());
  return step->step_seconds;
}

void Run() {
  const Workload w = Workload110B();
  const model::CostModel cost(w.spec, w.cluster.gpu());
  straggler::Situation s(w.cluster.num_gpus());
  s.SetRate(0, 12.53);
  s.SetRate(1, 5.42);
  s.SetRate(2, 2.57);

  // Heaviest straggler isolated; candidates place the remaining sizes
  // {1, 2, 4} in different contiguous orders (Figure 5's three scenarios).
  const std::vector<std::vector<int>> candidates = {
      {1, 1, 2, 4},  // Isolate both heavy stragglers' block first.
      {1, 2, 1, 4},  // Pair the 5.42 straggler with the 2.57 one.
      {1, 4, 2, 1},  // Put the 4-block right after the isolated straggler.
  };

  TablePrinter table(
      "Figure 11 (110B): Theorem 2 estimate vs actual step time");
  table.SetHeader({"node-0 grouping", "Thm2 relative time", "simulated s"});
  std::vector<double> estimates, actuals;
  for (const auto& sizes : candidates) {
    const core::GroupingResult grouping =
        MakeGrouping(w.cluster, cost, s, sizes);
    const double capacity = grouping.Capacity();
    Result<double> actual =
        SimulateGrouping(w.cluster, cost, s, grouping, w.global_batch);
    std::string label;
    for (int v : sizes) label += StrFormat("%d ", v);
    if (!actual.ok()) {
      table.AddRow({label, StrFormat("%.4f", 1.0 / capacity),
                    "infeasible"});
      continue;
    }
    estimates.push_back(1.0 / capacity);
    actuals.push_back(*actual);
    table.AddRow({label, StrFormat("%.4f", 1.0 / capacity),
                  StrFormat("%.2f", *actual)});
  }
  table.Print();

  // Rank correlation: the Theorem 2 ordering must match the simulation.
  bool monotone = true;
  for (size_t i = 0; i + 1 < estimates.size(); ++i) {
    for (size_t j = i + 1; j < estimates.size(); ++j) {
      if ((estimates[i] < estimates[j]) != (actuals[i] < actuals[j])) {
        monotone = false;
      }
    }
  }
  std::printf("\nTheorem 2 ranking %s the simulated ranking.\n",
              monotone ? "MATCHES" : "DOES NOT MATCH");
}

}  // namespace
}  // namespace bench
}  // namespace malleus

int main() {
  std::printf("Malleus reproduction: Figure 11 grouping-estimate fidelity\n\n");
  malleus::bench::Run();
  malleus::bench::DumpBenchMetrics("fig11_grouping");
  return 0;
}
