// Tests for src/graph: graph structure, step-graph construction (1F1B
// order, ZeRO-1 collective tail), deadlock detection, and cross-validation
// of the graph executor against the analytic pipeline simulator.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/builder.h"
#include "graph/executor.h"
#include "plan/estimator.h"
#include "plan/uniform.h"
#include "sim/pipeline_sim.h"

namespace malleus {
namespace graph {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  plan::ParallelPlan Uniform(int dp, int tp, int pp, int64_t batch = 64) {
    plan::UniformConfig cfg;
    cfg.dp = dp;
    cfg.tp = tp;
    cfg.pp = pp;
    cfg.global_batch = batch;
    std::vector<topo::GpuId> all = cluster_.AllGpus();
    std::vector<topo::GpuId> gpus(all.begin(), all.begin() + dp * tp * pp);
    Result<plan::ParallelPlan> p =
        plan::BuildUniformPlan(cluster_, cost_, gpus, cfg);
    MALLEUS_CHECK_OK(p.status());
    return std::move(p).ValueOrDie();
  }

  std::vector<double> HealthyRates() {
    std::vector<double> r(cluster_.num_gpus(), 1.0);
    return r;
  }

  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(4);
  model::CostModel cost_{model::ModelSpec::Llama32B(), topo::GpuSpec()};
};

TEST_F(GraphTest, GraphAddAssignsDenseIdsAndQueues) {
  Graph g;
  Op a;
  a.kind = OpKind::kForward;
  a.devices = {0, 1};
  a.base_seconds = 1.0;
  const OpId ida = g.Add(a);
  Op b;
  b.kind = OpKind::kBackward;
  b.devices = {0};
  b.deps = {ida};
  b.base_seconds = 2.0;
  const OpId idb = g.Add(b);
  EXPECT_EQ(ida, 0);
  EXPECT_EQ(idb, 1);
  EXPECT_EQ(g.DeviceQueue(0), (std::vector<OpId>{0, 1}));
  EXPECT_EQ(g.DeviceQueue(1), (std::vector<OpId>{0}));
  EXPECT_TRUE(g.DeviceQueue(7).empty());
  EXPECT_TRUE(g.Validate().ok());
}

TEST_F(GraphTest, ValidateRejectsForwardDeps) {
  Graph g;
  Op a;
  a.devices = {0};
  a.deps = {0};  // Self/forward dependency.
  g.Add(a);
  EXPECT_FALSE(g.Validate().ok());
}

TEST_F(GraphTest, StepGraphHasExpectedOpCounts) {
  const plan::ParallelPlan p = Uniform(2, 4, 4);
  Result<Graph> g = BuildStepGraph(p, cost_);
  ASSERT_TRUE(g.ok()) << g.status();
  const GraphStats stats = g->Stats();
  // Compute: dp * pp * m * 2 (+ one optimizer per GPU).
  EXPECT_EQ(stats.num_compute, 2 * 4 * 32 * 2 + 32);
  // P2P: per pipeline, (pp - 1) hops for fwd and for bwd, per micro-batch.
  EXPECT_EQ(stats.num_p2p, 2 * 2 * 3 * 32);
  // Collectives: L layers x TPmax slices x (RS + AG).
  EXPECT_EQ(stats.num_collectives, 60 * 4 * 2);
}

TEST_F(GraphTest, StepGraphComputeTimeMatchesCostModel) {
  const plan::ParallelPlan p = Uniform(2, 4, 4);
  Result<Graph> g = BuildStepGraph(p, cost_);
  ASSERT_TRUE(g.ok());
  // Total healthy compute seconds = dp * m * L * rho_4 * tau.
  const double expected =
      2.0 * 32 * 60 * cost_.Rho(4) * cost_.TauSeconds(1);
  EXPECT_NEAR(g->Stats().total_flops_seconds, expected + 32 * 1e-3,
              expected * 0.05);
}

TEST_F(GraphTest, CollectiveTailOrderedByLayerSlice) {
  const plan::ParallelPlan p = Uniform(2, 4, 4);
  Result<Graph> g = BuildStepGraph(p, cost_);
  ASSERT_TRUE(g.ok());
  // Within each GPU's queue, reduce-scatters appear in ascending
  // (layer, slice) order - the deadlock-free canonical order of S5.1.
  for (topo::GpuId gpu : p.ActiveGpus()) {
    std::pair<int, int> prev = {-1, -1};
    for (OpId id : g->DeviceQueue(gpu)) {
      const Op& op = g->op(id);
      if (op.kind != OpKind::kReduceScatter) continue;
      const std::pair<int, int> cur = {op.layer, op.slice};
      EXPECT_LT(prev, cur);
      prev = cur;
    }
  }
}

TEST_F(GraphTest, ExecuteHealthyMatchesAnalyticSimulator) {
  const plan::ParallelPlan p = Uniform(2, 4, 4);
  const straggler::Situation healthy(cluster_.num_gpus());
  Result<double> via_graph = SimulateStepViaGraph(
      cluster_, cost_, p, healthy, /*timing_noise_stddev=*/0.0, nullptr);
  ASSERT_TRUE(via_graph.ok()) << via_graph.status();

  Rng rng(1);
  sim::SimOptions opts;
  opts.timing_noise_stddev = 0.0;
  Result<sim::StepResult> analytic =
      sim::SimulateStep(cluster_, cost_, p, healthy, opts, &rng);
  ASSERT_TRUE(analytic.ok());
  // The two models differ in grad-sync details; compute dominates, so the
  // step times must agree closely.
  EXPECT_NEAR(*via_graph, analytic->step_seconds,
              analytic->step_seconds * 0.1);
}

TEST_F(GraphTest, ExecuteStragglerMatchesAnalyticSimulator) {
  const plan::ParallelPlan p = Uniform(2, 4, 4);
  straggler::Situation s(cluster_.num_gpus());
  s.SetLevel(0, 2);
  Result<double> via_graph =
      SimulateStepViaGraph(cluster_, cost_, p, s, 0.0, nullptr);
  ASSERT_TRUE(via_graph.ok());
  Rng rng(2);
  sim::SimOptions opts;
  opts.timing_noise_stddev = 0.0;
  Result<sim::StepResult> analytic =
      sim::SimulateStep(cluster_, cost_, p, s, opts, &rng);
  ASSERT_TRUE(analytic.ok());
  EXPECT_NEAR(*via_graph, analytic->step_seconds,
              analytic->step_seconds * 0.1);
}

TEST_F(GraphTest, ExecuteNonUniformPlanWithMixedTpDegrees) {
  // A Figure 6(b)-style plan: TP 4 replica + TP 2+2 replica.
  plan::ParallelPlan p;
  p.micro_batch_size = 1;
  p.global_batch = 64;
  plan::Pipeline p0;
  p0.num_microbatches = 32;
  p0.stages = {{{{0, 1, 2, 3}}, 30}, {{{4, 5, 6, 7}}, 30}};
  plan::Pipeline p1;
  p1.num_microbatches = 32;
  p1.stages = {{{{8, 9}}, 15}, {{{10, 11}}, 15},
               {{{12, 13}}, 15}, {{{14, 15}}, 15}};
  p.pipelines = {p0, p1};

  Result<Graph> g = BuildStepGraph(p, cost_);
  ASSERT_TRUE(g.ok()) << g.status();
  Result<ExecutionResult> exec =
      ExecuteGraph(*g, cluster_, HealthyRates());
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_GT(exec->makespan_seconds, 0.0);
  // A TP-2 GPU participates in 2 slices per layer (Figure 6b).
  int rs_count = 0;
  for (OpId id : g->DeviceQueue(8)) {
    if (g->op(id).kind == OpKind::kReduceScatter) ++rs_count;
  }
  EXPECT_EQ(rs_count, 15 * 2);
}

TEST_F(GraphTest, SharedDeviceOpsKeepConsistentRelativeOrder) {
  // The canonical (layer, slice) issue order of S5.1 translates into a
  // structural guarantee here: because Graph::Add appends to every
  // participant's queue in one global insertion order, any two ops sharing
  // a device appear in the *same* relative order on all shared devices -
  // the inversion that would deadlock real NCCL rings is unconstructible.
  const plan::ParallelPlan p = Uniform(2, 4, 4);
  Result<Graph> g = BuildStepGraph(p, cost_);
  ASSERT_TRUE(g.ok());
  for (topo::GpuId gpu : p.ActiveGpus()) {
    const std::vector<OpId>& queue = g->DeviceQueue(gpu);
    for (size_t i = 1; i < queue.size(); ++i) {
      EXPECT_LT(queue[i - 1], queue[i]);
    }
  }
  // And the executor indeed drains such a graph to completion.
  Result<ExecutionResult> exec =
      ExecuteGraph(*g, cluster_, HealthyRates());
  ASSERT_TRUE(exec.ok()) << exec.status();
  for (double f : exec->finish_seconds) EXPECT_GE(f, 0.0);
}

TEST_F(GraphTest, ExecuteScalesWithStragglerRate) {
  const plan::ParallelPlan p = Uniform(1, 4, 4);
  Result<Graph> g = BuildStepGraph(p, cost_);
  ASSERT_TRUE(g.ok());
  std::vector<double> rates = HealthyRates();
  Result<ExecutionResult> base = ExecuteGraph(*g, cluster_, rates);
  ASSERT_TRUE(base.ok());
  rates[0] = 2.0;
  Result<ExecutionResult> slow = ExecuteGraph(*g, cluster_, rates);
  ASSERT_TRUE(slow.ok());
  const double ratio = slow->makespan_seconds / base->makespan_seconds;
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.2);
}

TEST_F(GraphTest, ExecutorRejectsMissingRates) {
  const plan::ParallelPlan p = Uniform(1, 4, 2);
  Result<Graph> g = BuildStepGraph(p, cost_);
  ASSERT_TRUE(g.ok());
  std::vector<double> rates(cluster_.num_gpus(), 0.0);  // All unusable.
  EXPECT_FALSE(ExecuteGraph(*g, cluster_, rates).ok());
}

TEST_F(GraphTest, FailedGpuSignalsUnavailable) {
  const plan::ParallelPlan p = Uniform(2, 4, 4);
  straggler::Situation s(cluster_.num_gpus());
  s.Fail(0);
  Result<double> r = SimulateStepViaGraph(cluster_, cost_, p, s, 0.0,
                                          nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
}

}  // namespace
}  // namespace graph
}  // namespace malleus
