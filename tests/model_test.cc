// Tests for src/model: architecture specs (parameter counts pinned to the
// paper's 32B/70B/110B models) and the analytic cost model (tau, rho, group
// rates, the Appendix B.4 memory coefficients, activation checkpointing).

#include <gtest/gtest.h>

#include "model/cost_model.h"
#include "model/model_spec.h"
#include "topology/cluster.h"

namespace malleus {
namespace model {
namespace {

TEST(ModelSpecTest, ParameterCountsMatchPaperScales) {
  const double b32 = static_cast<double>(ModelSpec::Llama32B().TotalParams());
  const double b70 = static_cast<double>(ModelSpec::Llama70B().TotalParams());
  const double b110 =
      static_cast<double>(ModelSpec::Llama110B().TotalParams());
  EXPECT_NEAR(b32 / 1e9, 32.0, 1.5);
  EXPECT_NEAR(b70 / 1e9, 69.0, 2.0);
  EXPECT_NEAR(b110 / 1e9, 110.0, 3.0);
}

TEST(ModelSpecTest, LayerCountsFromPaper) {
  EXPECT_EQ(ModelSpec::Llama32B().num_layers, 60);   // Appendix A.1.
  EXPECT_EQ(ModelSpec::Llama70B().num_layers, 80);
  EXPECT_EQ(ModelSpec::Llama110B().num_layers, 80);  // Table 4 sums.
}

TEST(ModelSpecTest, GqaShrinksAttention) {
  ModelSpec gqa = ModelSpec::Llama70B();
  ModelSpec mha = gqa;
  mha.num_kv_heads = mha.num_heads;
  EXPECT_LT(gqa.ParamsPerLayer(), mha.ParamsPerLayer());
}

TEST(ModelSpecTest, FlopsScaleWithBatchAndParams) {
  const ModelSpec m = ModelSpec::Llama70B();
  EXPECT_NEAR(m.TrainFlopsPerLayer(2), 2 * m.TrainFlopsPerLayer(1), 1e6);
  // 6 FLOPs per parameter per token is the dominant term.
  const double per_token = m.TrainFlopsPerLayer(1) / (1.0 * m.seq_len);
  EXPECT_GT(per_token, 6.0 * m.ParamsPerLayer());
  EXPECT_LT(per_token, 7.0 * m.ParamsPerLayer());
}

TEST(ModelSpecTest, ValidationCatchesBadShapes) {
  ModelSpec m = ModelSpec::Tiny();
  EXPECT_TRUE(m.Validate().ok());
  m.num_heads = 7;  // Does not divide hidden.
  EXPECT_FALSE(m.Validate().ok());
  m = ModelSpec::Tiny();
  m.num_layers = 0;
  EXPECT_FALSE(m.Validate().ok());
}

class CostModelTest : public ::testing::Test {
 protected:
  model::CostModel cost_{ModelSpec::Llama70B(), topo::GpuSpec()};
};

TEST_F(CostModelTest, ZetaDecreasesWithTpDegree) {
  const double z1 = cost_.ZetaSeconds(1, 1);
  const double z2 = cost_.ZetaSeconds(2, 1);
  const double z4 = cost_.ZetaSeconds(4, 1);
  const double z8 = cost_.ZetaSeconds(8, 1);
  EXPECT_GT(z1, z2);
  EXPECT_GT(z2, z4);
  EXPECT_GT(z4, z8);
  // But not perfectly: ideal scaling is n*zeta_n == zeta_1.
  EXPECT_GT(8 * z8, z1);
}

TEST_F(CostModelTest, RhoNormalizedToTpOne) {
  EXPECT_DOUBLE_EQ(cost_.Rho(1), 1.0);
  EXPECT_LT(cost_.Rho(8), cost_.Rho(4));
  // rho is independent of the micro-batch size by construction.
  EXPECT_DOUBLE_EQ(cost_.ZetaSeconds(4, 3) / cost_.ZetaSeconds(1, 3),
                   cost_.Rho(4));
}

TEST_F(CostModelTest, GroupRateIsRhoTimesMax) {
  // y = rho_n * max{x}: the slowest member dominates (S4.2).
  const double y = cost_.GroupRate({1.0, 2.5, 1.2, 1.0});
  EXPECT_DOUBLE_EQ(y, cost_.Rho(4) * 2.5);
  EXPECT_DOUBLE_EQ(cost_.GroupRate({1.0}), 1.0);
}

TEST_F(CostModelTest, TauMatchesA800Magnitude) {
  // One 70B layer fwd+bwd on a single healthy A800 should take tens of ms
  // at TP = 8 equivalent throughput; sanity-check the absolute scale.
  const double tau8 = cost_.ZetaSeconds(8, 1);
  EXPECT_GT(tau8, 0.005);
  EXPECT_LT(tau8, 0.05);
}

TEST_F(CostModelTest, StateBytesShrinkWithDp) {
  // ZeRO-1 shards the optimizer across DP ranks.
  EXPECT_GT(cost_.StateBytesPerLayer(1), cost_.StateBytesPerLayer(4));
  const double base =
      static_cast<double>(cost_.spec().ParamsPerLayer()) *
      cost_.config().replicated_bytes_per_param;
  EXPECT_GT(cost_.StateBytesPerLayer(1000000), base);
  EXPECT_NEAR(cost_.StateBytesPerLayer(1000000), base, base * 0.01);
}

TEST_F(CostModelTest, MuDecreasesAlongThePipeline) {
  // Later stages stash fewer in-flight activations (Theorem 3's rationale).
  const double mu1 = cost_.MuBytes(1, 1, 4, 2);
  const double mu2 = cost_.MuBytes(1, 2, 4, 2);
  const double mu4 = cost_.MuBytes(1, 4, 4, 2);
  EXPECT_GT(mu1, mu2);
  EXPECT_GT(mu2, mu4);
  // The last stage degenerates to b * a_{f+b} + s.
  EXPECT_DOUBLE_EQ(mu4, cost_.ActBytesFwdBwd(1) + cost_.StateBytesPerLayer(2));
}

TEST_F(CostModelTest, NuOnlyOnFirstAndLastStages) {
  EXPECT_GT(cost_.NuBytes(1, 1, 4, 2), 0.0);
  EXPECT_DOUBLE_EQ(cost_.NuBytes(1, 2, 4, 2), 0.0);
  EXPECT_DOUBLE_EQ(cost_.NuBytes(1, 3, 4, 2), 0.0);
  EXPECT_GT(cost_.NuBytes(1, 4, 4, 2), 0.0);
  // A single-stage pipeline carries both embedding and head.
  EXPECT_GT(cost_.NuBytes(1, 1, 1, 2), cost_.NuBytes(1, 1, 4, 2));
}

TEST_F(CostModelTest, ActivationCheckpointingShrinksStash) {
  EXPECT_LT(cost_.ActBytesFwd(1, true), cost_.ActBytesFwd(1, false) * 0.3);
  EXPECT_LT(cost_.MuBytes(1, 1, 8, 2, true), cost_.MuBytes(1, 1, 8, 2, false));
}

TEST_F(CostModelTest, GroupCapacityScalesWithSizeAndKeepsHeadroom) {
  const double c1 = cost_.GroupCapacityBytes(1);
  const double c8 = cost_.GroupCapacityBytes(8);
  EXPECT_DOUBLE_EQ(c8, 8 * c1);
  EXPECT_LT(c1, static_cast<double>(cost_.gpu().UsableBytes()));
}

TEST_F(CostModelTest, CommunicationVolumes) {
  // P2P activations: bf16 hidden states.
  EXPECT_DOUBLE_EQ(cost_.P2pActivationBytes(2),
                   2.0 * 2.0 * cost_.spec().seq_len *
                       cost_.spec().hidden_size);
  EXPECT_DOUBLE_EQ(cost_.GradSyncBytesPerLayer(),
                   2.0 * cost_.spec().ParamsPerLayer());
  EXPECT_GT(cost_.CheckpointBytes(),
            10.0 * static_cast<double>(cost_.spec().TotalParams()));
}

TEST_F(CostModelTest, MfuDefinition) {
  // MFU of a hypothetical step. Doubling the time halves the MFU.
  const double m1 = cost_.Mfu(10.0, 64, 64);
  const double m2 = cost_.Mfu(20.0, 64, 64);
  EXPECT_NEAR(m1, 2 * m2, 1e-12);
  EXPECT_GT(m1, 0.0);
  EXPECT_LT(m1, 1.5);
}

// Parameterized sweep: every valid TP degree keeps the rho/zeta identities.
class TpDegreeTest : public ::testing::TestWithParam<int> {};

TEST_P(TpDegreeTest, RhoZetaConsistency) {
  const model::CostModel cost(ModelSpec::Llama32B(), topo::GpuSpec());
  const int n = GetParam();
  EXPECT_TRUE(IsValidTpDegree(n));
  EXPECT_NEAR(cost.Rho(n) * cost.ZetaSeconds(1, 2), cost.ZetaSeconds(n, 2),
              1e-12);
  EXPECT_LE(cost.Rho(n), 1.0);
  EXPECT_GE(cost.Rho(n) * n, 1.0);  // No super-linear scaling.
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, TpDegreeTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(TpDegreeValidityTest, OnlyPowersOfTwoUpToEight) {
  EXPECT_TRUE(IsValidTpDegree(1));
  EXPECT_TRUE(IsValidTpDegree(8));
  EXPECT_FALSE(IsValidTpDegree(0));
  EXPECT_FALSE(IsValidTpDegree(3));
  EXPECT_FALSE(IsValidTpDegree(16));
}

}  // namespace
}  // namespace model
}  // namespace malleus
