// Tests for src/sim: collective cost models, 1F1B discrete-event execution
// properties, gradient synchronization, restart costs, and failure
// signaling.

#include <gtest/gtest.h>

#include <cmath>

#include "model/cost_model.h"
#include "plan/estimator.h"
#include "plan/uniform.h"
#include "sim/collective.h"
#include "sim/pipeline_sim.h"
#include "sim/restart.h"

namespace malleus {
namespace sim {
namespace {

class CollectiveTest : public ::testing::Test {
 protected:
  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(2);
};

TEST_F(CollectiveTest, BottleneckBandwidth) {
  EXPECT_DOUBLE_EQ(GroupBottleneckBandwidth(cluster_, {0, 1, 2}), 400e9);
  EXPECT_DOUBLE_EQ(GroupBottleneckBandwidth(cluster_, {0, 8}), 200e9);
}

TEST_F(CollectiveTest, RingCollectiveScaling) {
  // reduce-scatter over n GPUs moves (n-1)/n of the bytes per link.
  const double t2 = ReduceScatterSeconds(cluster_, {0, 1}, 1e9);
  const double t8 =
      ReduceScatterSeconds(cluster_, {0, 1, 2, 3, 4, 5, 6, 7}, 1e9);
  EXPECT_GT(t8, t2);
  EXPECT_LT(t8, 2 * t2);
  EXPECT_DOUBLE_EQ(ReduceScatterSeconds(cluster_, {0}, 1e9), 0.0);
  // All-reduce = reduce-scatter + all-gather.
  EXPECT_DOUBLE_EQ(AllReduceSeconds(cluster_, {0, 1}, 1e9),
                   ReduceScatterSeconds(cluster_, {0, 1}, 1e9) +
                       AllGatherSeconds(cluster_, {0, 1}, 1e9));
}

TEST_F(CollectiveTest, P2pRespectsTopology) {
  EXPECT_LT(P2pSeconds(cluster_, 0, 1, 1e9), P2pSeconds(cluster_, 0, 8, 1e9));
  EXPECT_DOUBLE_EQ(P2pSeconds(cluster_, 3, 3, 1e9), 0.0);
}

TEST_F(CollectiveTest, BatchedSendRecvSerializesEndpoints) {
  // Two disjoint intra-node transfers run in parallel; two transfers out of
  // the same GPU serialize.
  const double disjoint = BatchedSendRecvSeconds(
      cluster_, {{0, 1, 1e9}, {2, 3, 1e9}});
  const double shared = BatchedSendRecvSeconds(
      cluster_, {{0, 1, 1e9}, {0, 2, 1e9}});
  EXPECT_LT(disjoint, shared);
}

TEST_F(CollectiveTest, BatchedSendRecvSharesNodeNic) {
  // Cross-node transfers from different GPUs of one node share the NIC.
  const double t = BatchedSendRecvSeconds(
      cluster_, {{0, 8, 1e9}, {1, 9, 1e9}});
  EXPECT_GT(t, 2e9 / 200e9 * 0.99);
}

TEST_F(CollectiveTest, EmptyTransferListIsFree) {
  EXPECT_DOUBLE_EQ(BatchedSendRecvSeconds(cluster_, {}), 0.0);
  EXPECT_DOUBLE_EQ(BatchedSendRecvSeconds(cluster_, {{0, 0, 1e9}}), 0.0);
}

TEST_F(CollectiveTest, BatchedSendRecvDegenerateInputs) {
  // packs <= 0 means "no rounds": nothing can move, regardless of the
  // transfer list.
  EXPECT_DOUBLE_EQ(
      BatchedSendRecvSeconds(cluster_, {{0, 1, 1e9}}, /*packs=*/0), 0.0);
  EXPECT_DOUBLE_EQ(
      BatchedSendRecvSeconds(cluster_, {{0, 1, 1e9}}, /*packs=*/-3), 0.0);
  // Zero-byte transfers contribute nothing, alone or mixed with self-moves.
  EXPECT_DOUBLE_EQ(
      BatchedSendRecvSeconds(cluster_, {{0, 1, 0.0}, {2, 2, 1e9}}), 0.0);
  // The flow model honors the same conventions.
  const net::Fabric fabric(cluster_);
  EXPECT_DOUBLE_EQ(
      BatchedSendRecvSecondsFlow(fabric, {{0, 1, 1e9}}, /*packs=*/0), 0.0);
  EXPECT_DOUBLE_EQ(BatchedSendRecvSecondsFlow(fabric, {}, /*packs=*/1), 0.0);
  EXPECT_DOUBLE_EQ(
      BatchedSendRecvSecondsFlow(fabric, {{0, 1, 0.0}, {2, 2, 1e9}}), 0.0);
}

TEST_F(CollectiveTest, BottleneckBandwidthDegenerateGroups) {
  // Documented convention: empty and single-GPU groups move no inter-GPU
  // bytes; report the fastest (intra-node NVLink) bandwidth so degenerate
  // groups never dominate a bottleneck computation.
  EXPECT_DOUBLE_EQ(GroupBottleneckBandwidth(cluster_, {}), 400e9);
  EXPECT_DOUBLE_EQ(GroupBottleneckBandwidth(cluster_, {9}), 400e9);
}

TEST(RestartTest, CostComposition) {
  RestartCostConfig cfg;
  const double load = CheckpointLoadSeconds(100e9, 2, cfg);
  EXPECT_NEAR(load, 100e9 / (2 * 2e9), 1e-9);
  EXPECT_NEAR(RestartSeconds(100e9, 2, cfg),
              2 * load + cfg.framework_init_seconds, 1e-9);
  // More I/O nodes -> faster.
  EXPECT_LT(RestartSeconds(100e9, 8, cfg), RestartSeconds(100e9, 2, cfg));
}

TEST(RestartTest, RestartAfterFailureDoesNotDoubleCountLoad) {
  // Regression for the restart-cost audit: a restart that follows a
  // failure (or a failed migration) cannot save the lost state, so it
  // pays init + one load. Charging RestartSeconds there would re-price
  // the checkpoint I/O as an impossible save — exactly one load more.
  RestartCostConfig cfg;
  const double load = CheckpointLoadSeconds(100e9, 4, cfg);
  const double after_failure = RestartAfterFailureSeconds(100e9, 4, cfg);
  EXPECT_NEAR(after_failure, load + cfg.framework_init_seconds, 1e-9);
  EXPECT_NEAR(RestartSeconds(100e9, 4, cfg), after_failure + load, 1e-9);
  // Never cheaper than a bare reload, never as dear as a planned restart.
  EXPECT_GT(after_failure, load);
  EXPECT_LT(after_failure, RestartSeconds(100e9, 4, cfg));
}

class StepSimTest : public ::testing::Test {
 protected:
  plan::ParallelPlan MakePlan(int dp, int tp, int pp) {
    plan::UniformConfig cfg;
    cfg.dp = dp;
    cfg.tp = tp;
    cfg.pp = pp;
    cfg.global_batch = 64;
    Result<plan::ParallelPlan> p =
        plan::BuildUniformPlan(cluster_, cost_, Gpus(dp * tp * pp), cfg);
    MALLEUS_CHECK_OK(p.status());
    return std::move(p).ValueOrDie();
  }

  std::vector<topo::GpuId> Gpus(int n) {
    std::vector<topo::GpuId> all = cluster_.AllGpus();
    return {all.begin(), all.begin() + n};
  }

  double Step(const plan::ParallelPlan& p, const straggler::Situation& s,
              double noise = 0.0) {
    Rng rng(17);
    SimOptions opts;
    opts.timing_noise_stddev = noise;
    Result<StepResult> r = SimulateStep(cluster_, cost_, p, s, opts, &rng);
    MALLEUS_CHECK_OK(r.status());
    return r->step_seconds;
  }

  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(4);
  model::CostModel cost_{model::ModelSpec::Llama32B(), topo::GpuSpec()};
};

TEST_F(StepSimTest, MatchesClosedFormWithinBubbleModel) {
  const plan::ParallelPlan p = MakePlan(2, 4, 4);
  const straggler::Situation healthy(cluster_.num_gpus());
  SimOptions opts;
  opts.timing_noise_stddev = 0.0;
  opts.include_p2p = false;
  opts.include_grad_sync = false;
  Rng rng(1);
  Result<StepResult> r = SimulateStep(cluster_, cost_, p, healthy, opts, &rng);
  ASSERT_TRUE(r.ok());
  const plan::StepEstimate est = plan::EstimateStep(p, cost_, healthy);
  // The closed form (m-1)*max + sum is exact for uniform 1F1B without
  // communication.
  EXPECT_NEAR(r->step_seconds, est.step_seconds, est.step_seconds * 0.02);
}

TEST_F(StepSimTest, StragglerSlowsStepProportionally) {
  const plan::ParallelPlan p = MakePlan(2, 4, 4);
  const straggler::Situation healthy(cluster_.num_gpus());
  straggler::Situation s(cluster_.num_gpus());
  s.SetRate(0, 2.0);
  const double ratio = Step(p, s) / Step(p, healthy);
  // One straggling stage slows its pipeline by ~2x; the other pipeline is
  // unaffected but the step waits for the slowest.
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 2.1);
}

TEST_F(StepSimTest, PipelineWithoutStragglerUnaffected) {
  const plan::ParallelPlan p = MakePlan(2, 4, 4);
  straggler::Situation s(cluster_.num_gpus());
  s.SetRate(0, 3.0);  // GPU 0 is in pipeline 0.
  Rng rng(3);
  SimOptions opts;
  opts.timing_noise_stddev = 0.0;
  Result<StepResult> r = SimulateStep(cluster_, cost_, p, s, opts, &rng);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->pipeline_seconds.size(), 2u);
  EXPECT_GT(r->pipeline_seconds[0], 2.5 * r->pipeline_seconds[1]);
}

TEST_F(StepSimTest, MeasuredRatesReflectTruth) {
  const plan::ParallelPlan p = MakePlan(2, 4, 4);
  straggler::Situation s(cluster_.num_gpus());
  s.SetRate(5, 2.5);
  Rng rng(4);
  SimOptions opts;
  Result<StepResult> r = SimulateStep(cluster_, cost_, p, s, opts, &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->measured_rates[5], 2.5, 0.2);
  EXPECT_NEAR(r->measured_rates[0], 1.0, 0.1);
}

TEST_F(StepSimTest, InactiveGpusReportNoMeasurement) {
  const plan::ParallelPlan p = MakePlan(2, 4, 2);  // 16 of 32 GPUs.
  const straggler::Situation healthy(cluster_.num_gpus());
  Rng rng(5);
  SimOptions opts;
  Result<StepResult> r = SimulateStep(cluster_, cost_, p, healthy, opts, &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->measured_rates[0], 0.0);
  EXPECT_DOUBLE_EQ(r->measured_rates[31], 0.0);
}

TEST_F(StepSimTest, FailedActiveGpuSignalsUnavailable) {
  const plan::ParallelPlan p = MakePlan(2, 4, 4);
  straggler::Situation s(cluster_.num_gpus());
  s.Fail(0);
  Rng rng(6);
  SimOptions opts;
  Result<StepResult> r = SimulateStep(cluster_, cost_, p, s, opts, &rng);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
}

TEST_F(StepSimTest, GradSyncGrowsWithDp) {
  const plan::ParallelPlan dp2 = MakePlan(2, 4, 4);
  const plan::ParallelPlan dp4 = MakePlan(4, 4, 2);
  const straggler::Situation healthy(cluster_.num_gpus());
  Rng rng(7);
  SimOptions opts;
  opts.timing_noise_stddev = 0.0;
  Result<StepResult> r2 =
      SimulateStep(cluster_, cost_, dp2, healthy, opts, &rng);
  Result<StepResult> r4 =
      SimulateStep(cluster_, cost_, dp4, healthy, opts, &rng);
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r4.ok());
  EXPECT_GT(r2->grad_sync_seconds, 0.0);
  EXPECT_GT(r4->grad_sync_seconds, r2->grad_sync_seconds * 0.9);
}

TEST_F(StepSimTest, DeeperPipelinesPayMoreBubble) {
  // Same resources, same TP: PP8/DP1 vs PP4/DP2 - with few micro-batches
  // the deeper pipeline pays a larger warm-up/cool-down share.
  const plan::ParallelPlan deep = MakePlan(1, 4, 8);
  const plan::ParallelPlan wide = MakePlan(2, 4, 4);
  const straggler::Situation healthy(cluster_.num_gpus());
  const double t_deep = Step(deep, healthy);
  const double t_wide = Step(wide, healthy);
  EXPECT_GT(t_deep, t_wide);
}

TEST_F(StepSimTest, NoiseIsBoundedAndSeedStable) {
  const plan::ParallelPlan p = MakePlan(2, 4, 4);
  const straggler::Situation healthy(cluster_.num_gpus());
  Rng a(42), b(42);
  SimOptions opts;
  Result<StepResult> ra = SimulateStep(cluster_, cost_, p, healthy, opts, &a);
  Result<StepResult> rb = SimulateStep(cluster_, cost_, p, healthy, opts, &b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_DOUBLE_EQ(ra->step_seconds, rb->step_seconds);
}

}  // namespace
}  // namespace sim
}  // namespace malleus
