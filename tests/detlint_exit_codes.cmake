# malleus_detlint CLI contract, run via `cmake -P` (see
# tests/CMakeLists.txt):
#   - exit 0 on clean sources, 1 on error-level findings, 2 on bad usage;
#   - a known-bad corpus snippet yields a SARIF finding at the exact
#     file:line (physicalLocation uri + region.startLine);
#   - the baseline suppresses a named finding (exit 0) and reports stale
#     entries as notes without failing;
#   - --list and --explain expose the rule registry.
# Expects -DMALLEUS_DETLINT, -DCORPUS_DIR, -DBASELINE (the checked-in
# tools/detlint_baseline.txt), -DWORK_DIR.

function(expect_exit code)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE result
                  OUTPUT_VARIABLE stdout
                  ERROR_VARIABLE stderr)
  if(NOT result EQUAL ${code})
    message(FATAL_ERROR
            "expected exit ${code}, got ${result} from: ${ARGN}\n"
            "stdout:\n${stdout}\nstderr:\n${stderr}")
  endif()
  set(last_stdout "${stdout}" PARENT_SCOPE)
endfunction()

function(expect_stdout_contains needle)
  string(FIND "${last_stdout}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
            "stdout does not contain '${needle}':\n${last_stdout}")
  endif()
endfunction()

function(expect_stdout_lacks needle)
  string(FIND "${last_stdout}" "${needle}" found)
  if(NOT found EQUAL -1)
    message(FATAL_ERROR "stdout unexpectedly contains '${needle}':\n"
            "${last_stdout}")
  endif()
endfunction()

# --- Registry surface --------------------------------------------------

expect_exit(0 ${MALLEUS_DETLINT} --list)
expect_stdout_contains("det.unordered-iteration")
expect_stdout_contains("conc.shared-mutable-capture")
expect_stdout_contains("status.discarded")
expect_stdout_contains("detlint.bad-allow")

expect_exit(0 ${MALLEUS_DETLINT} --explain=det.banned-function)
expect_stdout_contains("steady_clock")

# --- Usage errors are exit 2 -------------------------------------------

expect_exit(2 ${MALLEUS_DETLINT})                     # No paths.
expect_exit(2 ${MALLEUS_DETLINT} --explain=no.such.rule)
expect_exit(2 ${MALLEUS_DETLINT} --format=yaml ${CORPUS_DIR})
expect_exit(2 ${MALLEUS_DETLINT} --no-such-flag ${CORPUS_DIR})
expect_exit(2 ${MALLEUS_DETLINT} ${CORPUS_DIR}/does_not_exist.cc)

# --- Known-good corpus is clean ----------------------------------------

file(GLOB good_files "${CORPUS_DIR}/good_*.cc")
list(LENGTH good_files n_good)
if(n_good LESS 8)
  message(FATAL_ERROR "expected >= 8 good corpus files, found ${n_good}")
endif()
expect_exit(0 ${MALLEUS_DETLINT} ${good_files})
expect_stdout_contains("no findings")

# --- Known-bad corpus fails with located findings ----------------------

set(bad "${CORPUS_DIR}/bad_unordered_iteration.cc")

expect_exit(1 ${MALLEUS_DETLINT} ${bad})
expect_stdout_contains("det.unordered-iteration")

# The SARIF result points at the exact file and line of the bad range-for.
expect_exit(1 ${MALLEUS_DETLINT} --format=sarif ${bad})
expect_stdout_contains("https://json.schemastore.org/sarif-2.1.0.json")
expect_stdout_contains("\"name\":\"malleus-detlint\"")
expect_stdout_contains("bad_unordered_iteration.cc")
expect_stdout_contains("\"startLine\":8")

expect_exit(1 ${MALLEUS_DETLINT} --format=json ${bad})
expect_stdout_contains("\"code\":\"det.unordered-iteration\"")

# --- Baseline: suppress, then go stale ---------------------------------

# The checked-in baseline must parse and must not hide anything in the
# clean corpus.
expect_exit(0 ${MALLEUS_DETLINT} --baseline=${BASELINE} ${good_files})

# A baseline entry naming the bad finding exactly turns exit 1 into 0.
set(accept "${WORK_DIR}/detlint_accept.txt")
file(WRITE ${accept}
     "det.unordered-iteration ${bad}:8 demo: accepted for the contract test\n")
expect_exit(0 ${MALLEUS_DETLINT} --baseline=${accept} ${bad})

# Pointing that same baseline at a clean file makes the entry stale: still
# exit 0 (notes never fail the gate), but the staleness is reported.
expect_exit(0 ${MALLEUS_DETLINT} --baseline=${accept}
            ${CORPUS_DIR}/good_unordered_iteration.cc)
expect_stdout_contains("detlint.stale-baseline")

# Malformed baselines (no reason) are usage errors, not silent accepts.
set(noreason "${WORK_DIR}/detlint_noreason.txt")
file(WRITE ${noreason} "det.unordered-iteration ${bad}:8\n")
expect_exit(2 ${MALLEUS_DETLINT} --baseline=${noreason} ${bad})

# --- Directory walk skips the corpus unless named explicitly -----------

expect_exit(0 ${MALLEUS_DETLINT} ${CORPUS_DIR}/..)
expect_stdout_lacks("det.unordered-iteration")
