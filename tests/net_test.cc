// Tests for src/net: fabric link graph construction, flow-level simulation
// under max–min fair share, agreement with the analytic collective model
// when uncontended, contention behavior on shared links, and deterministic
// metrics output.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "model/cost_model.h"
#include "net/fabric.h"
#include "net/flow_sim.h"
#include "obs/metrics.h"
#include "plan/uniform.h"
#include "sim/collective.h"
#include "sim/pipeline_sim.h"

namespace malleus {
namespace net {
namespace {

// Relative difference helper for the "within 1%" acceptance bounds.
double RelDiff(double a, double b) {
  return std::abs(a - b) / std::max(std::abs(a), std::abs(b));
}

class FabricTest : public ::testing::Test {
 protected:
  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(2);
  Fabric fabric_{cluster_};
};

TEST_F(FabricTest, LinkLayout) {
  const int gpus = cluster_.num_gpus();
  const int nodes = cluster_.num_nodes();
  EXPECT_EQ(fabric_.num_links(), 2 * gpus + 2 * nodes);
  // NVLink ports carry the intra-node bandwidth, NICs the inter-node one.
  EXPECT_DOUBLE_EQ(fabric_.link(fabric_.GpuOut(0)).capacity_bps, 400e9);
  EXPECT_DOUBLE_EQ(fabric_.link(fabric_.GpuIn(5)).capacity_bps, 400e9);
  EXPECT_DOUBLE_EQ(fabric_.link(fabric_.NicOut(0)).capacity_bps, 200e9);
  EXPECT_DOUBLE_EQ(fabric_.link(fabric_.NicIn(1)).capacity_bps, 200e9);
  EXPECT_EQ(fabric_.link(fabric_.GpuOut(3)).name, "gpu3.out");
  EXPECT_EQ(fabric_.link(fabric_.NicIn(1)).name, "node1.nic.in");
}

TEST_F(FabricTest, Routes) {
  // Loopback crosses nothing.
  EXPECT_TRUE(fabric_.Route(2, 2).empty());
  // Intra-node: sender egress, receiver ingress.
  const std::vector<LinkId> intra = fabric_.Route(0, 1);
  ASSERT_EQ(intra.size(), 2u);
  EXPECT_EQ(intra[0], fabric_.GpuOut(0));
  EXPECT_EQ(intra[1], fabric_.GpuIn(1));
  // Cross-node additionally crosses both nodes' NICs.
  const std::vector<LinkId> cross = fabric_.Route(0, 8);
  ASSERT_EQ(cross.size(), 4u);
  EXPECT_EQ(cross[0], fabric_.GpuOut(0));
  EXPECT_EQ(cross[1], fabric_.NicOut(0));
  EXPECT_EQ(cross[2], fabric_.NicIn(1));
  EXPECT_EQ(cross[3], fabric_.GpuIn(8));
}

TEST_F(FabricTest, PathBandwidthMatchesCluster) {
  EXPECT_DOUBLE_EQ(fabric_.PathBandwidth(0, 1),
                   cluster_.BandwidthBytesPerSec(0, 1));
  EXPECT_DOUBLE_EQ(fabric_.PathBandwidth(0, 8),
                   cluster_.BandwidthBytesPerSec(0, 8));
}

TEST(NetModelTest, ParseAndName) {
  Result<NetModel> analytic = ParseNetModel("analytic");
  ASSERT_TRUE(analytic.ok());
  EXPECT_EQ(*analytic, NetModel::kAnalytic);
  Result<NetModel> flow = ParseNetModel("flow");
  ASSERT_TRUE(flow.ok());
  EXPECT_EQ(*flow, NetModel::kFlow);
  EXPECT_FALSE(ParseNetModel("fancy").ok());
  EXPECT_STREQ(NetModelName(NetModel::kAnalytic), "analytic");
  EXPECT_STREQ(NetModelName(NetModel::kFlow), "flow");
}

class FlowSimTest : public ::testing::Test {
 protected:
  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(2);
  Fabric fabric_{cluster_};
};

TEST_F(FlowSimTest, SingleFlowMatchesAnalytic) {
  // Acceptance: an isolated flow reproduces the analytic transfer time to
  // within 1% (it is exact by construction).
  for (const topo::GpuId dst : {topo::GpuId{1}, topo::GpuId{8}}) {
    const double analytic = sim::P2pSeconds(cluster_, 0, dst, 1e9);
    FlowSim fs(fabric_);
    const int64_t id = fs.Submit({0, dst, 1e9});
    fs.Run();
    EXPECT_LT(RelDiff(fs.outcome(id).seconds, analytic), 0.01)
        << "dst=" << dst;
    EXPECT_LT(RelDiff(sim::P2pSecondsFlow(fabric_, 0, dst, 1e9), analytic),
              0.01);
  }
}

TEST_F(FlowSimTest, DegenerateFlows) {
  FlowSim fs(fabric_);
  const int64_t loopback = fs.Submit({3, 3, 1e9, /*start_seconds=*/2.0});
  const int64_t empty = fs.Submit({0, 1, 0.0, /*start_seconds=*/1.0});
  fs.Run();
  EXPECT_DOUBLE_EQ(fs.outcome(loopback).seconds, 0.0);
  // A zero-byte flow still pays the path latency (up to rounding against
  // its absolute start time).
  EXPECT_NEAR(fs.outcome(empty).seconds, cluster_.LatencySec(0, 1), 1e-12);
}

TEST_F(FlowSimTest, RingCollectiveMatchesAnalytic) {
  // Uncontended ring collectives agree with the closed forms: each ring
  // hop has dedicated ports, so no flow is slowed down.
  const std::vector<topo::GpuId> intra = {0, 1, 2, 3};
  const std::vector<topo::GpuId> cross = {0, 1, 8, 9};
  for (const auto& gpus : {intra, cross}) {
    EXPECT_LT(RelDiff(sim::AllReduceSecondsFlow(fabric_, gpus, 4e9),
                      sim::AllReduceSeconds(cluster_, gpus, 4e9)),
              0.01);
    EXPECT_LT(RelDiff(sim::ReduceScatterSecondsFlow(fabric_, gpus, 4e9),
                      sim::ReduceScatterSeconds(cluster_, gpus, 4e9)),
              0.01);
  }
  // The NetModel dispatch overload routes to the same implementations.
  EXPECT_DOUBLE_EQ(
      sim::AllReduceSeconds(cluster_, cross, 4e9, NetModel::kFlow),
      sim::AllReduceSecondsFlow(fabric_, cross, 4e9));
  EXPECT_DOUBLE_EQ(
      sim::AllReduceSeconds(cluster_, cross, 4e9, NetModel::kAnalytic),
      sim::AllReduceSeconds(cluster_, cross, 4e9));
}

TEST_F(FlowSimTest, TwoFlowsOnSharedNicHalveBandwidth) {
  // Acceptance: two concurrent cross-node flows from distinct GPUs of node
  // 0 to distinct GPUs of node 1 share both the node-0 NIC egress and the
  // node-1 NIC ingress, so each observes half the isolated bandwidth.
  const double bytes = 10e9;
  const double isolated = bytes / 200e9;
  FlowSim fs(fabric_);
  const int64_t a = fs.Submit({0, 8, bytes, 0.0, /*latency_seconds=*/0.0});
  const int64_t b = fs.Submit({1, 9, bytes, 0.0, /*latency_seconds=*/0.0});
  fs.Run();
  EXPECT_LT(RelDiff(fs.outcome(a).seconds, 2.0 * isolated), 0.01);
  EXPECT_LT(RelDiff(fs.outcome(b).seconds, 2.0 * isolated), 0.01);
  // The shared NIC saturates; per-link accounting sees both flows.
  const LinkUsage& nic = fs.link_usage()[fabric_.NicOut(0)];
  EXPECT_DOUBLE_EQ(nic.bytes, 2.0 * bytes);
  EXPECT_DOUBLE_EQ(nic.peak_utilization, 1.0);
}

TEST_F(FlowSimTest, MaxMinSharesRecomputeOnDeparture) {
  // Flow B starts when A is half done; after A drains, B gets the full
  // link. A: full rate for t0, half rate until done. With byte volume V
  // and isolated time T: A ends at 1.5 T, B (same volume) ends at 2 T.
  const double bytes = 10e9;
  const double t_iso = bytes / 200e9;
  FlowSim fs(fabric_);
  const int64_t a = fs.Submit({0, 8, bytes, 0.0, /*latency_seconds=*/0.0});
  const int64_t b = fs.Submit(
      {1, 9, bytes, 0.5 * t_iso, /*latency_seconds=*/0.0});
  fs.Run();
  EXPECT_LT(RelDiff(fs.outcome(a).end_seconds, 1.5 * t_iso), 0.01);
  EXPECT_LT(RelDiff(fs.outcome(b).end_seconds, 2.0 * t_iso), 0.01);
}

TEST_F(FlowSimTest, DisjointFlowsDoNotInteract) {
  // Different node pairs, different ports: both flows run at full rate.
  const double bytes = 10e9;
  FlowSim fs(fabric_);
  const int64_t a = fs.Submit({0, 1, bytes, 0.0, /*latency_seconds=*/0.0});
  const int64_t b = fs.Submit({2, 3, bytes, 0.0, /*latency_seconds=*/0.0});
  fs.Run();
  EXPECT_LT(RelDiff(fs.outcome(a).seconds, bytes / 400e9), 0.01);
  EXPECT_LT(RelDiff(fs.outcome(b).seconds, bytes / 400e9), 0.01);
}

TEST_F(FlowSimTest, SubmitRingDegenerateGroups) {
  FlowSim fs(fabric_);
  EXPECT_TRUE(SubmitRing(&fs, {}, 1e9, 0.0, 0.0).empty());
  EXPECT_TRUE(SubmitRing(&fs, {3}, 1e9, 0.0, 0.0).empty());
}

TEST_F(FlowSimTest, RecordsMetrics) {
  obs::MetricsRegistry::Global().ResetAll();
  FlowSim fs(fabric_);
  fs.Submit({0, 8, 10e9, 0.0});
  fs.Submit({1, 9, 10e9, 0.0});
  fs.Run();
  RecordFlowSimMetrics(fs);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  EXPECT_DOUBLE_EQ(registry.GetCounter("net.flows")->Value(), 2.0);
  EXPECT_DOUBLE_EQ(registry.GetCounter("net.bytes_total")->Value(), 20e9);
  EXPECT_DOUBLE_EQ(
      registry.GetCounter("net.link.node0.nic.out.bytes")->Value(), 20e9);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("net.peak_link_utilization")->Value(), 1.0);
  obs::MetricsRegistry::Global().ResetAll();
}

// Acceptance: for a fixed seed the flow model is deterministic — two
// simulations of the same step produce byte-identical fabric metrics.
TEST(FlowDeterminismTest, MetricsAreByteIdentical) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(2);
  const model::CostModel cost(model::ModelSpec::Tiny(), cluster.gpu());
  plan::UniformConfig cfg;
  cfg.dp = 4;
  cfg.tp = 2;
  cfg.pp = 2;
  cfg.global_batch = 32;
  Result<plan::ParallelPlan> p =
      plan::BuildUniformPlan(cluster, cost, cluster.AllGpus(), cfg);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const straggler::Situation healthy(cluster.num_gpus());
  sim::SimOptions options;
  options.net_model = NetModel::kFlow;

  std::string snapshots[2];
  for (std::string& snapshot : snapshots) {
    obs::MetricsRegistry::Global().ResetAll();
    Rng rng(1234);
    Result<sim::StepResult> step =
        sim::SimulateStep(cluster, cost, *p, healthy, options, &rng);
    ASSERT_TRUE(step.ok());
    snapshot = obs::MetricsRegistry::Global().ToJson();
  }
  EXPECT_EQ(snapshots[0], snapshots[1]);
  EXPECT_NE(snapshots[0].find("net.bytes_total"), std::string::npos);
  obs::MetricsRegistry::Global().ResetAll();
}

// The flow step simulator never prices a step cheaper than pure analytic
// comm, and contention can only slow a step down.
TEST(FlowStepTest, FlowStepAtLeastAnalytic) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(2);
  const model::CostModel cost(model::ModelSpec::Tiny(), cluster.gpu());
  plan::UniformConfig cfg;
  cfg.dp = 4;
  cfg.tp = 2;
  cfg.pp = 2;
  cfg.global_batch = 32;
  Result<plan::ParallelPlan> p =
      plan::BuildUniformPlan(cluster, cost, cluster.AllGpus(), cfg);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const straggler::Situation healthy(cluster.num_gpus());

  double seconds[2];
  for (const NetModel model : {NetModel::kAnalytic, NetModel::kFlow}) {
    sim::SimOptions options;
    options.timing_noise_stddev = 0.0;
    options.net_model = model;
    Rng rng(7);
    Result<sim::StepResult> step =
        sim::SimulateStep(cluster, cost, *p, healthy, options, &rng);
    ASSERT_TRUE(step.ok());
    seconds[model == NetModel::kFlow] = step->step_seconds;
  }
  EXPECT_GE(seconds[1], seconds[0] * (1.0 - 1e-9));
}

}  // namespace
}  // namespace net
}  // namespace malleus
