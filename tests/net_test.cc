// Tests for src/net: fabric link graph construction, flow-level simulation
// under max–min fair share, agreement with the analytic collective model
// when uncontended, contention behavior on shared links, and deterministic
// metrics output.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "model/cost_model.h"
#include "net/fabric.h"
#include "net/flow_sim.h"
#include "obs/metrics.h"
#include "plan/uniform.h"
#include "sim/collective.h"
#include "sim/pipeline_sim.h"

namespace malleus {
namespace net {
namespace {

// Relative difference helper for the "within 1%" acceptance bounds.
double RelDiff(double a, double b) {
  return std::abs(a - b) / std::max(std::abs(a), std::abs(b));
}

class FabricTest : public ::testing::Test {
 protected:
  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(2);
  Fabric fabric_{cluster_};
};

TEST_F(FabricTest, LinkLayout) {
  const int gpus = cluster_.num_gpus();
  const int nodes = cluster_.num_nodes();
  EXPECT_EQ(fabric_.num_links(), 2 * gpus + 2 * nodes);
  // NVLink ports carry the intra-node bandwidth, NICs the inter-node one.
  EXPECT_DOUBLE_EQ(fabric_.link(fabric_.GpuOut(0)).capacity_bps, 400e9);
  EXPECT_DOUBLE_EQ(fabric_.link(fabric_.GpuIn(5)).capacity_bps, 400e9);
  EXPECT_DOUBLE_EQ(fabric_.link(fabric_.NicOut(0)).capacity_bps, 200e9);
  EXPECT_DOUBLE_EQ(fabric_.link(fabric_.NicIn(1)).capacity_bps, 200e9);
  EXPECT_EQ(fabric_.link(fabric_.GpuOut(3)).name, "gpu3.out");
  EXPECT_EQ(fabric_.link(fabric_.NicIn(1)).name, "node1.nic.in");
}

TEST_F(FabricTest, Routes) {
  // Loopback crosses nothing.
  EXPECT_TRUE(fabric_.Route(2, 2).empty());
  // Intra-node: sender egress, receiver ingress.
  const std::vector<LinkId> intra = fabric_.Route(0, 1);
  ASSERT_EQ(intra.size(), 2u);
  EXPECT_EQ(intra[0], fabric_.GpuOut(0));
  EXPECT_EQ(intra[1], fabric_.GpuIn(1));
  // Cross-node additionally crosses both nodes' NICs.
  const std::vector<LinkId> cross = fabric_.Route(0, 8);
  ASSERT_EQ(cross.size(), 4u);
  EXPECT_EQ(cross[0], fabric_.GpuOut(0));
  EXPECT_EQ(cross[1], fabric_.NicOut(0));
  EXPECT_EQ(cross[2], fabric_.NicIn(1));
  EXPECT_EQ(cross[3], fabric_.GpuIn(8));
}

TEST_F(FabricTest, PathBandwidthMatchesCluster) {
  EXPECT_DOUBLE_EQ(fabric_.PathBandwidth(0, 1),
                   cluster_.BandwidthBytesPerSec(0, 1));
  EXPECT_DOUBLE_EQ(fabric_.PathBandwidth(0, 8),
                   cluster_.BandwidthBytesPerSec(0, 8));
}

TEST(NetModelTest, ParseAndName) {
  Result<NetModel> analytic = ParseNetModel("analytic");
  ASSERT_TRUE(analytic.ok());
  EXPECT_EQ(*analytic, NetModel::kAnalytic);
  Result<NetModel> flow = ParseNetModel("flow");
  ASSERT_TRUE(flow.ok());
  EXPECT_EQ(*flow, NetModel::kFlow);
  EXPECT_FALSE(ParseNetModel("fancy").ok());
  EXPECT_STREQ(NetModelName(NetModel::kAnalytic), "analytic");
  EXPECT_STREQ(NetModelName(NetModel::kFlow), "flow");
}

class FlowSimTest : public ::testing::Test {
 protected:
  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(2);
  Fabric fabric_{cluster_};
};

TEST_F(FlowSimTest, SingleFlowMatchesAnalytic) {
  // Acceptance: an isolated flow reproduces the analytic transfer time to
  // within 1% (it is exact by construction).
  for (const topo::GpuId dst : {topo::GpuId{1}, topo::GpuId{8}}) {
    const double analytic = sim::P2pSeconds(cluster_, 0, dst, 1e9);
    FlowSim fs(fabric_);
    const int64_t id = fs.Submit({0, dst, 1e9});
    fs.Run();
    EXPECT_LT(RelDiff(fs.outcome(id).seconds, analytic), 0.01)
        << "dst=" << dst;
    EXPECT_LT(RelDiff(sim::P2pSecondsFlow(fabric_, 0, dst, 1e9), analytic),
              0.01);
  }
}

TEST_F(FlowSimTest, DegenerateFlows) {
  FlowSim fs(fabric_);
  const int64_t loopback = fs.Submit({3, 3, 1e9, /*start_seconds=*/2.0});
  const int64_t empty = fs.Submit({0, 1, 0.0, /*start_seconds=*/1.0});
  fs.Run();
  EXPECT_DOUBLE_EQ(fs.outcome(loopback).seconds, 0.0);
  // A zero-byte flow still pays the path latency (up to rounding against
  // its absolute start time).
  EXPECT_NEAR(fs.outcome(empty).seconds, cluster_.LatencySec(0, 1), 1e-12);
}

TEST_F(FlowSimTest, RingCollectiveMatchesAnalytic) {
  // Uncontended ring collectives agree with the closed forms: each ring
  // hop has dedicated ports, so no flow is slowed down.
  const std::vector<topo::GpuId> intra = {0, 1, 2, 3};
  const std::vector<topo::GpuId> cross = {0, 1, 8, 9};
  for (const auto& gpus : {intra, cross}) {
    EXPECT_LT(RelDiff(sim::AllReduceSecondsFlow(fabric_, gpus, 4e9),
                      sim::AllReduceSeconds(cluster_, gpus, 4e9)),
              0.01);
    EXPECT_LT(RelDiff(sim::ReduceScatterSecondsFlow(fabric_, gpus, 4e9),
                      sim::ReduceScatterSeconds(cluster_, gpus, 4e9)),
              0.01);
  }
  // The NetModel dispatch overload routes to the same implementations.
  EXPECT_DOUBLE_EQ(
      sim::AllReduceSeconds(cluster_, cross, 4e9, NetModel::kFlow),
      sim::AllReduceSecondsFlow(fabric_, cross, 4e9));
  EXPECT_DOUBLE_EQ(
      sim::AllReduceSeconds(cluster_, cross, 4e9, NetModel::kAnalytic),
      sim::AllReduceSeconds(cluster_, cross, 4e9));
}

TEST_F(FlowSimTest, TwoFlowsOnSharedNicHalveBandwidth) {
  // Acceptance: two concurrent cross-node flows from distinct GPUs of node
  // 0 to distinct GPUs of node 1 share both the node-0 NIC egress and the
  // node-1 NIC ingress, so each observes half the isolated bandwidth.
  const double bytes = 10e9;
  const double isolated = bytes / 200e9;
  FlowSim fs(fabric_);
  const int64_t a = fs.Submit({0, 8, bytes, 0.0, /*latency_seconds=*/0.0});
  const int64_t b = fs.Submit({1, 9, bytes, 0.0, /*latency_seconds=*/0.0});
  fs.Run();
  EXPECT_LT(RelDiff(fs.outcome(a).seconds, 2.0 * isolated), 0.01);
  EXPECT_LT(RelDiff(fs.outcome(b).seconds, 2.0 * isolated), 0.01);
  // The shared NIC saturates; per-link accounting sees both flows.
  const LinkUsage& nic = fs.link_usage()[fabric_.NicOut(0)];
  EXPECT_DOUBLE_EQ(nic.bytes, 2.0 * bytes);
  EXPECT_DOUBLE_EQ(nic.peak_utilization, 1.0);
}

TEST_F(FlowSimTest, MaxMinSharesRecomputeOnDeparture) {
  // Flow B starts when A is half done; after A drains, B gets the full
  // link. A: full rate for t0, half rate until done. With byte volume V
  // and isolated time T: A ends at 1.5 T, B (same volume) ends at 2 T.
  const double bytes = 10e9;
  const double t_iso = bytes / 200e9;
  FlowSim fs(fabric_);
  const int64_t a = fs.Submit({0, 8, bytes, 0.0, /*latency_seconds=*/0.0});
  const int64_t b = fs.Submit(
      {1, 9, bytes, 0.5 * t_iso, /*latency_seconds=*/0.0});
  fs.Run();
  EXPECT_LT(RelDiff(fs.outcome(a).end_seconds, 1.5 * t_iso), 0.01);
  EXPECT_LT(RelDiff(fs.outcome(b).end_seconds, 2.0 * t_iso), 0.01);
}

TEST_F(FlowSimTest, DisjointFlowsDoNotInteract) {
  // Different node pairs, different ports: both flows run at full rate.
  const double bytes = 10e9;
  FlowSim fs(fabric_);
  const int64_t a = fs.Submit({0, 1, bytes, 0.0, /*latency_seconds=*/0.0});
  const int64_t b = fs.Submit({2, 3, bytes, 0.0, /*latency_seconds=*/0.0});
  fs.Run();
  EXPECT_LT(RelDiff(fs.outcome(a).seconds, bytes / 400e9), 0.01);
  EXPECT_LT(RelDiff(fs.outcome(b).seconds, bytes / 400e9), 0.01);
}

TEST_F(FlowSimTest, SubmitRingDegenerateGroups) {
  FlowSim fs(fabric_);
  EXPECT_TRUE(SubmitRing(&fs, {}, 1e9, 0.0, 0.0).empty());
  EXPECT_TRUE(SubmitRing(&fs, {3}, 1e9, 0.0, 0.0).empty());
}

TEST_F(FlowSimTest, RecordsMetrics) {
  obs::MetricsRegistry::Global().ResetAll();
  FlowSim fs(fabric_);
  fs.Submit({0, 8, 10e9, 0.0});
  fs.Submit({1, 9, 10e9, 0.0});
  fs.Run();
  RecordFlowSimMetrics(fs);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  EXPECT_DOUBLE_EQ(registry.GetCounter("net.flows")->Value(), 2.0);
  EXPECT_DOUBLE_EQ(registry.GetCounter("net.bytes_total")->Value(), 20e9);
  EXPECT_DOUBLE_EQ(
      registry.GetCounter("net.link.node0.nic.out.bytes")->Value(), 20e9);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("net.peak_link_utilization")->Value(), 1.0);
  obs::MetricsRegistry::Global().ResetAll();
}

// Acceptance: for a fixed seed the flow model is deterministic — two
// simulations of the same step produce byte-identical fabric metrics.
TEST(FlowDeterminismTest, MetricsAreByteIdentical) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(2);
  const model::CostModel cost(model::ModelSpec::Tiny(), cluster.gpu());
  plan::UniformConfig cfg;
  cfg.dp = 4;
  cfg.tp = 2;
  cfg.pp = 2;
  cfg.global_batch = 32;
  Result<plan::ParallelPlan> p =
      plan::BuildUniformPlan(cluster, cost, cluster.AllGpus(), cfg);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const straggler::Situation healthy(cluster.num_gpus());
  sim::SimOptions options;
  options.net_model = NetModel::kFlow;

  std::string snapshots[2];
  for (std::string& snapshot : snapshots) {
    obs::MetricsRegistry::Global().ResetAll();
    Rng rng(1234);
    Result<sim::StepResult> step =
        sim::SimulateStep(cluster, cost, *p, healthy, options, &rng);
    ASSERT_TRUE(step.ok());
    snapshot = obs::MetricsRegistry::Global().ToJson();
  }
  EXPECT_EQ(snapshots[0], snapshots[1]);
  EXPECT_NE(snapshots[0].find("net.bytes_total"), std::string::npos);
  obs::MetricsRegistry::Global().ResetAll();
}

// The flow step simulator never prices a step cheaper than pure analytic
// comm, and contention can only slow a step down.
TEST(FlowStepTest, FlowStepAtLeastAnalytic) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(2);
  const model::CostModel cost(model::ModelSpec::Tiny(), cluster.gpu());
  plan::UniformConfig cfg;
  cfg.dp = 4;
  cfg.tp = 2;
  cfg.pp = 2;
  cfg.global_batch = 32;
  Result<plan::ParallelPlan> p =
      plan::BuildUniformPlan(cluster, cost, cluster.AllGpus(), cfg);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const straggler::Situation healthy(cluster.num_gpus());

  double seconds[2];
  for (const NetModel model : {NetModel::kAnalytic, NetModel::kFlow}) {
    sim::SimOptions options;
    options.timing_noise_stddev = 0.0;
    options.net_model = model;
    Rng rng(7);
    Result<sim::StepResult> step =
        sim::SimulateStep(cluster, cost, *p, healthy, options, &rng);
    ASSERT_TRUE(step.ok());
    seconds[model == NetModel::kFlow] = step->step_seconds;
  }
  EXPECT_GE(seconds[1], seconds[0] * (1.0 - 1e-9));
}

topo::ClusterSpec FatTreeCluster(int nodes, int gpn, int nodes_per_pod,
                                 double oversub) {
  topo::FabricSpec f;
  f.kind = topo::FabricSpec::Kind::kFatTree;
  f.nodes_per_pod = nodes_per_pod;
  f.oversubscription = oversub;
  return topo::ClusterSpec(nodes, gpn, topo::GpuSpec(), topo::LinkSpec(), f);
}

topo::ClusterSpec RailCluster(int nodes, int gpn, double oversub) {
  topo::FabricSpec f;
  f.kind = topo::FabricSpec::Kind::kRail;
  f.oversubscription = oversub;
  return topo::ClusterSpec(nodes, gpn, topo::GpuSpec(), topo::LinkSpec(), f);
}

TEST(HierFabricTest, FatTreeLinkLayoutAndRoutes) {
  // 4 nodes x 4 GPUs, pods of 2 nodes: 32 GPU ports + 8 NIC ports + 4 pod
  // uplinks.
  const topo::ClusterSpec cluster = FatTreeCluster(4, 4, 2, 4.0);
  const Fabric fabric(cluster);
  EXPECT_EQ(fabric.num_links(), 2 * 16 + 2 * 4 + 2 * 2);
  EXPECT_EQ(fabric.link(fabric.PodUp(0)).name, "pod0.up");
  EXPECT_EQ(fabric.link(fabric.PodDown(1)).name, "pod1.down");
  // Pod uplink capacity: 2 x 200 GB/s / 4:1 = 100 GB/s.
  EXPECT_DOUBLE_EQ(fabric.link(fabric.PodUp(0)).capacity_bps, 100e9);

  // Intra-pod cross-node route: the seed 4-link shape, no spine.
  const std::vector<LinkId> intra_pod = fabric.Route(0, 4);
  ASSERT_EQ(intra_pod.size(), 4u);
  EXPECT_EQ(intra_pod[1], fabric.NicOut(0));
  EXPECT_EQ(intra_pod[2], fabric.NicIn(1));

  // Cross-pod route is deterministic: src pod up, then dst pod down.
  const std::vector<LinkId> cross_pod = fabric.Route(0, 12);
  ASSERT_EQ(cross_pod.size(), 6u);
  EXPECT_EQ(cross_pod[0], fabric.GpuOut(0));
  EXPECT_EQ(cross_pod[1], fabric.NicOut(0));
  EXPECT_EQ(cross_pod[2], fabric.PodUp(0));
  EXPECT_EQ(cross_pod[3], fabric.PodDown(1));
  EXPECT_EQ(cross_pod[4], fabric.NicIn(3));
  EXPECT_EQ(cross_pod[5], fabric.GpuIn(12));
  EXPECT_DOUBLE_EQ(fabric.PathBandwidth(0, 12),
                   cluster.BandwidthBytesPerSec(0, 12));
}

TEST(HierFabricTest, RailLinkLayoutAndRoutes) {
  // 2 nodes x 4 GPUs rail-optimized: 16 GPU ports + 16 per-GPU NIC ports +
  // 8 rail uplinks.
  const topo::ClusterSpec cluster = RailCluster(2, 4, 2.0);
  const Fabric fabric(cluster);
  EXPECT_EQ(fabric.num_links(), 2 * 8 + 2 * 8 + 2 * 4);
  EXPECT_EQ(fabric.link(fabric.GpuNicOut(3)).name, "gpu3.nic.out");
  EXPECT_EQ(fabric.link(fabric.RailUp(2)).name, "rail2.up");
  // Rail uplink: 2 nodes x 200 GB/s / 2:1 = 200 GB/s.
  EXPECT_DOUBLE_EQ(fabric.link(fabric.RailUp(0)).capacity_bps, 200e9);

  // Same node: NVLink, never the NICs.
  EXPECT_EQ(fabric.Route(0, 1).size(), 2u);
  // Same rail cross-node: per-GPU NICs, no spine.
  const std::vector<LinkId> same_rail = fabric.Route(1, 5);
  ASSERT_EQ(same_rail.size(), 4u);
  EXPECT_EQ(same_rail[1], fabric.GpuNicOut(1));
  EXPECT_EQ(same_rail[2], fabric.GpuNicIn(5));
  // Cross rail: src rail up, dst rail down.
  const std::vector<LinkId> cross_rail = fabric.Route(0, 5);
  ASSERT_EQ(cross_rail.size(), 6u);
  EXPECT_EQ(cross_rail[2], fabric.RailUp(0));
  EXPECT_EQ(cross_rail[3], fabric.RailDown(1));
}

TEST(HierFabricTest, OversubscribedSpineContention) {
  // 2 pods x 2 nodes x 2 GPUs at 4:1: the pod-0 uplink tapers to
  // 2 x 200 / 4 = 100 GB/s. Two concurrent cross-pod flows from different
  // nodes of pod 0 have dedicated NICs but share that uplink, so each gets
  // 50 GB/s — 4x slower than the un-tapered NIC-limited transfer.
  const topo::ClusterSpec cluster = FatTreeCluster(4, 2, 2, 4.0);
  const Fabric fabric(cluster);
  const double bytes = 10e9;
  FlowSim fs(fabric);
  const int64_t a = fs.Submit({0, 4, bytes, 0.0, /*latency_seconds=*/0.0});
  const int64_t b = fs.Submit({2, 6, bytes, 0.0, /*latency_seconds=*/0.0});
  fs.Run();
  EXPECT_LT(RelDiff(fs.outcome(a).seconds, bytes / 50e9), 0.01);
  EXPECT_LT(RelDiff(fs.outcome(b).seconds, bytes / 50e9), 0.01);
  const LinkUsage& up = fs.link_usage()[fabric.PodUp(0)];
  EXPECT_DOUBLE_EQ(up.bytes, 2.0 * bytes);
  EXPECT_DOUBLE_EQ(up.peak_utilization, 1.0);
}

TEST(HierFabricTest, IncrementalMatchesLegacyBitwise) {
  // The incremental max–min engine must be bit-identical to the
  // from-scratch legacy engine, including on hierarchical fabrics with
  // staggered arrivals and shared spine uplinks.
  const topo::ClusterSpec cluster = FatTreeCluster(4, 4, 2, 2.0);
  const Fabric fabric(cluster);
  FlowSim inc(fabric, FlowSimMode::kIncremental);
  FlowSim leg(fabric, FlowSimMode::kLegacy);
  int64_t n = 0;
  for (FlowSim* fs : {&inc, &leg}) {
    n = 0;
    for (topo::GpuId src = 0; src < cluster.num_gpus(); ++src) {
      const topo::GpuId dst = (src * 7 + 5) % cluster.num_gpus();
      if (dst == src) continue;
      fs->Submit({src, dst, 1e9 + 1e8 * src, 1e-4 * (src % 5)});
      ++n;
    }
    fs->Run();
  }
  EXPECT_DOUBLE_EQ(inc.MakespanSeconds(), leg.MakespanSeconds());
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(inc.outcome(i).seconds, leg.outcome(i).seconds) << i;
    EXPECT_DOUBLE_EQ(inc.outcome(i).end_seconds, leg.outcome(i).end_seconds)
        << i;
  }
  for (int l = 0; l < fabric.num_links(); ++l) {
    EXPECT_DOUBLE_EQ(inc.link_usage()[l].bytes, leg.link_usage()[l].bytes);
    EXPECT_DOUBLE_EQ(inc.link_usage()[l].peak_utilization,
                     leg.link_usage()[l].peak_utilization);
  }
}

}  // namespace
}  // namespace net
}  // namespace malleus
