// Tests for src/baselines: Megatron (static + restart), DeepSpeed (analytic
// ZeRO-3 model + config tuner), Oobleck (template migration vs restart),
// the Malleus adapter, and the trace runner.

#include <gtest/gtest.h>

#include "baselines/deepspeed.h"
#include "baselines/malleus_adapter.h"
#include "baselines/megatron.h"
#include "baselines/oobleck.h"
#include "baselines/trace_runner.h"

namespace malleus {
namespace baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  straggler::Situation Healthy() {
    return straggler::Situation(cluster_.num_gpus());
  }
  straggler::Situation WithStraggler(int gpu, int level) {
    straggler::Situation s(cluster_.num_gpus());
    s.SetLevel(gpu, level);
    return s;
  }

  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(4);
  model::CostModel cost_{model::ModelSpec::Llama32B(), topo::GpuSpec()};
};

TEST_F(BaselinesTest, MegatronStaticSuffersFromStraggler) {
  MegatronBaseline m(cluster_, cost_, MegatronOptions());
  ASSERT_TRUE(m.Initialize(64).ok());
  const double base = *m.StepSeconds(Healthy());
  Result<TransitionReport> t = m.OnSituationChange(WithStraggler(0, 3));
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->restart_seconds, 0.0);  // Static: nothing happens.
  const double slow = *m.StepSeconds(WithStraggler(0, 3));
  EXPECT_GT(slow, 3.0 * base);  // ~5.3x straggler dominates the pipeline.
}

TEST_F(BaselinesTest, MegatronRestartExcludesNodeAndPaysOverhead) {
  MegatronOptions opts;
  opts.with_restart = true;
  MegatronBaseline m(cluster_, cost_, opts);
  ASSERT_TRUE(m.Initialize(64).ok());
  const double base = *m.StepSeconds(Healthy());
  Result<TransitionReport> t = m.OnSituationChange(WithStraggler(0, 3));
  ASSERT_TRUE(t.ok());
  EXPECT_GT(t->restart_seconds, 60.0);  // Checkpoint + init + reload.
  const double after = *m.StepSeconds(WithStraggler(0, 3));
  // Runs straggler-free on 3 of 4 nodes: slower than 4 nodes but far
  // better than dragging the straggler along.
  EXPECT_GT(after, base);
  EXPECT_LT(after, 2.0 * base);
  // Re-admitting the node needs another restart.
  Result<TransitionReport> back = m.OnSituationChange(Healthy());
  ASSERT_TRUE(back.ok());
  EXPECT_GT(back->restart_seconds, 60.0);
}

TEST_F(BaselinesTest, MegatronRestartNoOpWhenNodeSetUnchanged) {
  MegatronOptions opts;
  opts.with_restart = true;
  MegatronBaseline m(cluster_, cost_, opts);
  ASSERT_TRUE(m.Initialize(64).ok());
  ASSERT_TRUE(m.OnSituationChange(WithStraggler(0, 1)).ok());
  Result<TransitionReport> again = m.OnSituationChange(WithStraggler(0, 3));
  ASSERT_TRUE(again.ok());
  EXPECT_DOUBLE_EQ(again->restart_seconds, 0.0);
}

TEST_F(BaselinesTest, DeepSpeedGloballySensitiveToOneStraggler) {
  DeepSpeedBaseline d(cluster_, cost_, DeepSpeedOptions());
  ASSERT_TRUE(d.Initialize(64).ok());
  const double base = *d.StepSeconds(Healthy());
  const double slow = *d.StepSeconds(WithStraggler(5, 1));
  // One level-1 straggler roughly doubles the step (paper: ~2x).
  EXPECT_GT(slow, 1.6 * base);
  EXPECT_LT(slow, 2.6 * base);
}

TEST_F(BaselinesTest, DeepSpeedCoLocatedStragglersCompound) {
  DeepSpeedBaseline d(cluster_, cost_, DeepSpeedOptions());
  ASSERT_TRUE(d.Initialize(64).ok());
  straggler::Situation one = WithStraggler(0, 1);
  straggler::Situation node(cluster_.num_gpus());
  for (int g = 0; g < 8; ++g) node.SetLevel(g, 1);
  EXPECT_GT(*d.StepSeconds(node), 1.8 * *d.StepSeconds(one));
}

TEST_F(BaselinesTest, DeepSpeedMfuGrowsWithModelScale) {
  DeepSpeedBaseline small(cluster_, cost_, DeepSpeedOptions());
  const model::CostModel big_cost(model::ModelSpec::Llama110B(),
                                  topo::GpuSpec());
  DeepSpeedBaseline big(cluster_, big_cost, DeepSpeedOptions());
  // Paper Table 2: 29.6% (32B) vs 52.9% (110B).
  EXPECT_LT(small.HealthyMfu(), 0.35);
  EXPECT_GT(big.HealthyMfu(), 0.45);
}

TEST_F(BaselinesTest, DeepSpeedTunerRespectsMemory) {
  DeepSpeedBaseline d(cluster_, cost_, DeepSpeedOptions());
  ASSERT_TRUE(d.Initialize(64).ok());
  Result<DeepSpeedConfig> full = d.TuneConfig(32);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->dp * full->sp, 32);
  // 8 GPUs: ZeRO-3 states balloon per GPU; AC becomes mandatory.
  Result<DeepSpeedConfig> small = d.TuneConfig(8);
  ASSERT_TRUE(small.ok()) << small.status();
  EXPECT_TRUE(small->activation_ckpt);
}

TEST_F(BaselinesTest, OobleckOverheadEvenWhenHealthy) {
  OobleckBaseline o(cluster_, cost_, OobleckOptions());
  MegatronBaseline m(cluster_, cost_, MegatronOptions());
  ASSERT_TRUE(o.Initialize(64).ok());
  ASSERT_TRUE(m.Initialize(64).ok());
  EXPECT_GT(*o.StepSeconds(Healthy()), 1.5 * *m.StepSeconds(Healthy()));
}

TEST_F(BaselinesTest, OobleckMigratesOnNodeLossRestartsOnRecovery) {
  OobleckBaseline o(cluster_, cost_, OobleckOptions());
  ASSERT_TRUE(o.Initialize(64).ok());
  // Losing a node: template exists -> migration.
  Result<TransitionReport> lose = o.OnSituationChange(WithStraggler(0, 2));
  ASSERT_TRUE(lose.ok());
  EXPECT_GT(lose->migration_seconds, 0.0);
  EXPECT_DOUBLE_EQ(lose->restart_seconds, 0.0);
  EXPECT_FALSE(o.last_transition_restarted());
  // Node recovers: re-integration needs a restart.
  Result<TransitionReport> recover = o.OnSituationChange(Healthy());
  ASSERT_TRUE(recover.ok());
  EXPECT_GT(recover->restart_seconds, 0.0);
  EXPECT_TRUE(o.last_transition_restarted());
}

TEST_F(BaselinesTest, OobleckRestartsWhenTemplateMissing) {
  OobleckBaseline o(cluster_, cost_, OobleckOptions());
  ASSERT_TRUE(o.Initialize(64).ok());
  // Stragglers on 3 of 4 nodes: the 1-node template does not exist.
  straggler::Situation s(cluster_.num_gpus());
  s.SetLevel(0, 1);
  s.SetLevel(8, 2);
  s.SetLevel(16, 3);
  Result<TransitionReport> t = o.OnSituationChange(s);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(o.last_transition_restarted());
}

TEST_F(BaselinesTest, MalleusAdapterRunsTrace) {
  MalleusFramework fw(cluster_, cost_);
  const auto trace = straggler::StandardTrace(/*steps_per_phase=*/4);
  Result<std::vector<PhaseStats>> stats =
      RunTrace(&fw, cluster_, trace, 64);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(stats->size(), trace.size());
  for (const PhaseStats& p : *stats) {
    EXPECT_EQ(p.step_seconds.size(), 4u);
    EXPECT_GT(p.mean_step_seconds, 0.0);
  }
}

TEST_F(BaselinesTest, TraceRunnerExcludesTransientSteps) {
  MegatronBaseline m(cluster_, cost_, MegatronOptions());
  TraceRunOptions opts;
  opts.warmup_steps = 2;
  Result<std::vector<PhaseStats>> stats = RunTrace(
      &m, cluster_, {{straggler::SituationId::kNormal, 5}}, 64, opts);
  ASSERT_TRUE(stats.ok());
  const PhaseStats& p = stats->front();
  double tail_mean = 0.0;
  for (size_t i = 2; i < 5; ++i) tail_mean += p.step_seconds[i];
  tail_mean /= 3.0;
  EXPECT_NEAR(p.mean_step_seconds, tail_mean, 1e-12);
}

}  // namespace
}  // namespace baselines
}  // namespace malleus
