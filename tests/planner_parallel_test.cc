// Determinism tests for the concurrent planner sweep: the chosen plan must
// be bit-identical at every worker thread count and with the solve cache
// on, off, cold or warm; timing attribution must stay non-negative and
// bounded by the wall clock in the single-thread case.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/planner.h"
#include "exec/thread_pool.h"
#include "model/cost_model.h"
#include "obs/metrics.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace core {
namespace {

using straggler::Situation;
using straggler::SituationId;

class PlannerParallelTest : public ::testing::Test {
 protected:
  // A mixed-straggler situation: S3 (a canonical multi-level scenario)
  // plus extra stragglers so grouping, splitting and the dp sweep all
  // exercise non-trivial paths. Kept at 16 GPUs so the many cold Plan()
  // calls in this suite stay fast.
  Situation SeededSituation() const {
    Situation s = Situation::Canonical(cluster_, SituationId::kS3)
                      .ValueOrDie();
    s.SetLevel(5, 2);
    s.SetLevel(9, 1);
    s.SetLevel(14, 3);
    return s;
  }

  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(2);  // 16 GPUs
  model::CostModel cost_{model::ModelSpec::Llama32B(), topo::GpuSpec()};
};

// Full observable equality of two plan results.
void ExpectSamePlan(const PlanResult& a, const PlanResult& b) {
  EXPECT_EQ(a.plan.Signature(), b.plan.Signature());
  EXPECT_EQ(a.plan.ToString(), b.plan.ToString());
  EXPECT_EQ(a.estimated_seconds, b.estimated_seconds);            // Exact.
  EXPECT_EQ(a.estimated_full_seconds, b.estimated_full_seconds);  // Exact.
  EXPECT_EQ(a.chosen_tp, b.chosen_tp);
}

TEST_F(PlannerParallelTest, PlanIsIdenticalAtEveryThreadCount) {
  const Situation situation = SeededSituation();
  std::vector<PlanResult> results;
  for (int threads : {1, 2, 4, 8}) {
    Planner planner(cluster_, cost_);  // Fresh planner: cold cache each run.
    PlannerOptions opts;
    opts.num_threads = threads;
    Result<PlanResult> r = planner.Plan(situation, 32, opts);
    ASSERT_TRUE(r.ok()) << "threads=" << threads << ": " << r.status();
    results.push_back(*std::move(r));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    SCOPED_TRACE("thread count index " + std::to_string(i));
    ExpectSamePlan(results[0], results[i]);
  }
}

TEST_F(PlannerParallelTest, CacheOnOffAndWarmAllAgree) {
  const Situation situation = SeededSituation();

  Planner cached(cluster_, cost_);
  PlannerOptions on;
  on.num_threads = 1;
  Result<PlanResult> cold = cached.Plan(situation, 32, on);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_GT(cached.solve_cache().size(), 0u);
  // Re-plan the identical situation on the now-warm cache.
  Result<PlanResult> warm = cached.Plan(situation, 32, on);
  ASSERT_TRUE(warm.ok()) << warm.status();

  Planner uncached(cluster_, cost_);
  PlannerOptions off = on;
  off.enable_solve_cache = false;
  Result<PlanResult> no_cache = uncached.Plan(situation, 32, off);
  ASSERT_TRUE(no_cache.ok()) << no_cache.status();
  EXPECT_EQ(uncached.solve_cache().size(), 0u);

  ExpectSamePlan(*cold, *warm);
  ExpectSamePlan(*cold, *no_cache);
}

TEST_F(PlannerParallelTest, WarmCacheReplaysInsteadOfResolving) {
  const Situation situation = SeededSituation();
  Planner planner(cluster_, cost_);
  PlannerOptions opts;
  opts.num_threads = 1;
  ASSERT_TRUE(planner.Plan(situation, 32, opts).ok());
  const solver::SolveCache::Stats after_first = planner.solve_cache().stats();
  EXPECT_GT(after_first.misses, 0);

  ASSERT_TRUE(planner.Plan(situation, 32, opts).ok());
  const solver::SolveCache::Stats after_second =
      planner.solve_cache().stats();
  // The second sweep solves the same candidates: every orchestration
  // lookup hits and no new entries are created.
  EXPECT_GT(after_second.hits, after_first.hits);
  EXPECT_EQ(after_second.misses, after_first.misses);
}

TEST_F(PlannerParallelTest, CacheMetricsAreRecorded) {
  const Situation situation = SeededSituation();
  auto& registry = obs::MetricsRegistry::Global();
  const double hits_before =
      registry.GetCounter("planner.cache_hits")->Value();
  const double misses_before =
      registry.GetCounter("planner.cache_misses")->Value();

  Planner planner(cluster_, cost_);
  PlannerOptions opts;
  opts.num_threads = 2;
  ASSERT_TRUE(planner.Plan(situation, 32, opts).ok());
  ASSERT_TRUE(planner.Plan(situation, 32, opts).ok());

  EXPECT_GT(registry.GetCounter("planner.cache_hits")->Value(), hits_before);
  EXPECT_GT(registry.GetCounter("planner.cache_misses")->Value(),
            misses_before);
  // The requested 2 workers are clamped by the physical core count and the
  // minimum-work-per-worker rule (a tiny sweep runs inline), so the gauge
  // records between 1 and min(2, cap) — never more than was asked for.
  const double threads_gauge = registry.GetGauge("planner.threads")->Value();
  EXPECT_GE(threads_gauge, 1.0);
  EXPECT_LE(threads_gauge,
            static_cast<double>(std::min(2, exec::ConcurrencyCap())));
}

TEST_F(PlannerParallelTest, EnvironmentDefaultMatchesPinnedThreadCount) {
  const Situation situation = SeededSituation();
  Planner pinned(cluster_, cost_);
  PlannerOptions one;
  one.num_threads = 1;
  Result<PlanResult> serial = pinned.Plan(situation, 32, one);
  ASSERT_TRUE(serial.ok()) << serial.status();

  ASSERT_EQ(setenv("MALLEUS_PLANNER_THREADS", "4", 1), 0);
  Planner from_env(cluster_, cost_);
  Result<PlanResult> parallel =
      from_env.Plan(situation, 32, PlannerOptions());  // num_threads = 0.
  ASSERT_EQ(unsetenv("MALLEUS_PLANNER_THREADS"), 0);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ExpectSamePlan(*serial, *parallel);
}

TEST_F(PlannerParallelTest, TimingComponentsNonNegativeAndBounded) {
  const Situation situation = SeededSituation();
  Planner planner(cluster_, cost_);
  PlannerOptions opts;
  opts.num_threads = 1;  // Single worker: busy time nests inside the wall.
  Result<PlanResult> r = planner.Plan(situation, 32, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  const PlannerTimings& t = r->timings;
  EXPECT_GE(t.grouping_seconds, 0.0);
  EXPECT_GE(t.division_seconds, 0.0);
  EXPECT_GE(t.ordering_seconds, 0.0);
  EXPECT_GE(t.assignment_seconds, 0.0);
  EXPECT_GT(t.total_seconds, 0.0);
  const double component_sum = t.grouping_seconds + t.division_seconds +
                               t.ordering_seconds + t.assignment_seconds;
  EXPECT_LE(component_sum, t.total_seconds);
}

}  // namespace
}  // namespace core
}  // namespace malleus
