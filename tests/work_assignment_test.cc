// Tests for core/work_assignment: the Eq. (2) layer ILP (with the Appendix
// B.4 memory caps) and the Eq. (3) data ILP, in both non-uniform and
// uniform (ablation) modes.

#include <gtest/gtest.h>

#include <numeric>

#include "core/work_assignment.h"
#include "model/cost_model.h"

namespace malleus {
namespace core {
namespace {

class WorkAssignmentTest : public ::testing::Test {
 protected:
  model::CostModel cost_{model::ModelSpec::Llama32B(), topo::GpuSpec()};
};

TEST_F(WorkAssignmentTest, CapsDecreaseTowardEarlyStages) {
  // Early stages stash more activations -> fewer layers fit.
  const std::vector<int64_t> caps =
      StageLayerCapacities({8, 8, 8, 8}, /*micro_batch=*/4, /*dp=*/2, cost_);
  ASSERT_EQ(caps.size(), 4u);
  EXPECT_LE(caps[0], caps[1]);
  EXPECT_LE(caps[1], caps[2]);
  for (int64_t c : caps) EXPECT_GT(c, 0);
}

TEST_F(WorkAssignmentTest, CapsScaleWithGroupSize) {
  const std::vector<int64_t> big =
      StageLayerCapacities({8, 8}, 1, 2, cost_);
  const std::vector<int64_t> small =
      StageLayerCapacities({2, 2}, 1, 2, cost_);
  EXPECT_GT(big[0], 3 * small[0]);
}

TEST_F(WorkAssignmentTest, EvenRatesSplitLayersEvenly) {
  Result<LayerAssignment> r = AssignLayers(
      {0.2, 0.2, 0.2, 0.2}, {8, 8, 8, 8}, 1, 2, cost_);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->layers, (std::vector<int>{15, 15, 15, 15}));
  EXPECT_DOUBLE_EQ(r->bottleneck, 0.2 * 15);
}

TEST_F(WorkAssignmentTest, SlowStageGetsFewerLayers) {
  Result<LayerAssignment> r = AssignLayers(
      {0.6, 0.2, 0.2, 0.2}, {8, 8, 8, 8}, 1, 2, cost_);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(std::accumulate(r->layers.begin(), r->layers.end(), 0), 60);
  EXPECT_LT(r->layers[0], r->layers[1]);
  // Bottleneck must match the actual assignment.
  double expected = 0.0;
  const std::vector<double> rates = {0.6, 0.2, 0.2, 0.2};
  for (int j = 0; j < 4; ++j) {
    expected = std::max(expected, rates[j] * r->layers[j]);
  }
  EXPECT_DOUBLE_EQ(r->bottleneck, expected);
}

TEST_F(WorkAssignmentTest, HopelessStageGetsZeroLayers) {
  // A group straggling 50x harder should be cut entirely (S4.2: "solving
  // these ILP problems can automatically assign zero layers").
  Result<LayerAssignment> r = AssignLayers(
      {10.0, 0.2, 0.2, 0.2}, {1, 8, 8, 8}, 1, 2, cost_);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->layers[0], 0);
}

TEST_F(WorkAssignmentTest, UniformModeChecksMemory) {
  // Even split of 60 layers across tiny groups overflows the early stage.
  Result<LayerAssignment> r = AssignLayers(
      {1.0, 1.0}, {1, 1}, /*micro_batch=*/4, /*dp=*/2, cost_,
      /*nonuniform=*/false);
  EXPECT_FALSE(r.ok());
}

TEST_F(WorkAssignmentTest, UniformModeEvenSplitWithRemainder) {
  model::CostModel tiny(model::ModelSpec::Tiny(14, 1024), topo::GpuSpec());
  Result<LayerAssignment> r = AssignLayers(
      {1.0, 1.0, 1.0, 1.0}, {2, 2, 2, 2}, 1, 2, tiny, /*nonuniform=*/false);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->layers, (std::vector<int>{3, 3, 4, 4}));
}

TEST_F(WorkAssignmentTest, InfeasibleWhenModelCannotFit) {
  // Two single-GPU stages cannot hold 60 layers of 32B at all.
  Result<LayerAssignment> r =
      AssignLayers({1.0, 1.0}, {1, 1}, 4, 2, cost_);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInfeasible());
}

TEST(AssignDataTest, EvenBottlenecksSplitEvenly) {
  Result<std::vector<int64_t>> m = AssignData({3.0, 3.0, 3.0, 3.0}, 64);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, (std::vector<int64_t>{16, 16, 16, 16}));
}

TEST(AssignDataTest, SlowPipelineGetsLessData) {
  Result<std::vector<int64_t>> m = AssignData({9.0, 3.0}, 12);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, (std::vector<int64_t>{3, 9}));
}

TEST(AssignDataTest, EveryPipelineGetsAtLeastOne) {
  // An extremely slow pipeline still carries >= 1 micro-batch: the planner
  // removes groups, not whole pipelines.
  Result<std::vector<int64_t>> m = AssignData({1000.0, 1.0, 1.0}, 10);
  ASSERT_TRUE(m.ok());
  EXPECT_GE((*m)[0], 1);
  EXPECT_EQ((*m)[0] + (*m)[1] + (*m)[2], 10);
}

TEST(AssignDataTest, UniformModeIgnoresBottlenecks) {
  Result<std::vector<int64_t>> m =
      AssignData({9.0, 1.0, 1.0}, 10, /*nonuniform=*/false);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, (std::vector<int64_t>{4, 3, 3}));
}

TEST(AssignDataTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(AssignData({}, 8).ok());
  EXPECT_FALSE(AssignData({1.0, 1.0, 1.0}, 2).ok());  // Fewer than DP.
  EXPECT_FALSE(AssignData({0.0, 1.0}, 8).ok());
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(AssignData({inf, 1.0}, 8).ok());
}

// Parameterized sweep: the Eq. (3) assignment is optimal (min-max product)
// for a spread of bottleneck vectors, verified by brute force over small
// totals.
class AssignDataSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(AssignDataSweep, MatchesBruteForceMinMax) {
  const std::vector<double> o = {2.0, 1.0, 0.5};
  const int64_t total = GetParam();
  Result<std::vector<int64_t>> got = AssignData(o, total);
  ASSERT_TRUE(got.ok());
  double got_obj = 0.0;
  for (int i = 0; i < 3; ++i) {
    got_obj = std::max(got_obj, o[i] * (*got)[i]);
  }
  double best = 1e30;
  for (int64_t a = 1; a <= total - 2; ++a) {
    for (int64_t b = 1; b <= total - a - 1; ++b) {
      const int64_t c = total - a - b;
      best = std::min(best,
                      std::max({o[0] * a, o[1] * b, o[2] * c}));
    }
  }
  EXPECT_NEAR(got_obj, best, 1e-9) << "total=" << total;
}

INSTANTIATE_TEST_SUITE_P(Totals, AssignDataSweep,
                         ::testing::Values(3, 5, 8, 13, 21, 34, 64));

}  // namespace
}  // namespace core
}  // namespace malleus
