// Tests for core/sharding and core/migration: interval ownership, slice
// counts with non-uniform TP degrees, deadlock-free collective ordering,
// and the migration diff (volume conservation, no-op detection).

#include <gtest/gtest.h>

#include <map>

#include "core/migration.h"
#include "core/sharding.h"
#include "plan/uniform.h"

namespace malleus {
namespace core {
namespace {

class ShardingTest : public ::testing::Test {
 protected:
  plan::ParallelPlan Uniform(int dp, int tp, int pp) {
    plan::UniformConfig cfg;
    cfg.dp = dp;
    cfg.tp = tp;
    cfg.pp = pp;
    cfg.global_batch = 64;
    std::vector<topo::GpuId> all = cluster_.AllGpus();
    std::vector<topo::GpuId> gpus(all.begin(), all.begin() + dp * tp * pp);
    Result<plan::ParallelPlan> p =
        plan::BuildUniformPlan(cluster_, cost_, gpus, cfg);
    MALLEUS_CHECK_OK(p.status());
    return std::move(p).ValueOrDie();
  }

  // A DP-2 plan with TP 4 in pipeline 0 and TP 2+2 in pipeline 1 for the
  // same layers - the non-uniform case of Figure 6(b).
  plan::ParallelPlan NonUniform() {
    plan::ParallelPlan p;
    p.micro_batch_size = 1;
    p.global_batch = 64;
    plan::Pipeline p0;
    p0.num_microbatches = 32;
    p0.stages = {{{{0, 1, 2, 3}}, 30}, {{{4, 5, 6, 7}}, 30}};
    plan::Pipeline p1;
    p1.num_microbatches = 32;
    p1.stages = {{{{8, 9}}, 15}, {{{10, 11}}, 15},
                 {{{12, 13}}, 15}, {{{14, 15}}, 15}};
    p.pipelines = {p0, p1};
    return p;
  }

  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(4);
  model::CostModel cost_{model::ModelSpec::Llama32B(), topo::GpuSpec()};
};

TEST_F(ShardingTest, OwnersCoverUnitInterval) {
  const plan::ParallelPlan p = Uniform(2, 4, 4);
  for (int layer : {0, 17, 59}) {
    Result<std::vector<OwnedInterval>> owners = LayerWeightOwners(p, 0, layer);
    ASSERT_TRUE(owners.ok()) << owners.status();
    double pos = 0.0;
    for (const OwnedInterval& iv : *owners) {
      EXPECT_DOUBLE_EQ(iv.begin, pos);
      pos = iv.end;
    }
    EXPECT_DOUBLE_EQ(pos, 1.0);
    EXPECT_EQ(owners->size(), 4u);
  }
}

TEST_F(ShardingTest, OwnersRejectBadIndices) {
  const plan::ParallelPlan p = Uniform(2, 4, 4);
  EXPECT_FALSE(LayerWeightOwners(p, 5, 0).ok());
  EXPECT_FALSE(LayerWeightOwners(p, 0, 60).ok());
}

TEST_F(ShardingTest, SliceCountsFollowTpMaxRule) {
  // Figure 6(b): with TPmax = 4, a GPU in the TP-2 pipeline owns 2 slices.
  const plan::ParallelPlan p = NonUniform();
  EXPECT_EQ(SliceCountForGpu(p, 0, 0), 1);   // TP 4 holder of layer 0.
  EXPECT_EQ(SliceCountForGpu(p, 8, 0), 2);   // TP 2 holder of layer 0.
  EXPECT_EQ(SliceCountForGpu(p, 8, 20), 0);  // Layer 20 is on stage 2.
  EXPECT_EQ(SliceCountForGpu(p, 10, 20), 2);
}

TEST_F(ShardingTest, CollectiveOrderIsGloballyConsistent) {
  // All GPUs must issue per-slice collectives in the same (layer, slice)
  // order or the rings deadlock: the order must be strictly ascending for
  // every GPU.
  const plan::ParallelPlan p = NonUniform();
  for (topo::GpuId g : p.ActiveGpus()) {
    const auto calls = CollectiveCallOrder(p, g);
    EXPECT_FALSE(calls.empty());
    for (size_t i = 1; i < calls.size(); ++i) {
      EXPECT_LT(calls[i - 1], calls[i]);
    }
  }
}

TEST_F(ShardingTest, CollectiveOrderCoversEverySlicePerLayerOnce) {
  const plan::ParallelPlan p = NonUniform();
  // For each layer, gather the slices issued across pipeline-1 GPUs: each
  // of the TPmax = 4 slice indices must appear exactly once.
  std::map<std::pair<int, int>, int> issued;
  for (topo::GpuId g : {8, 9, 10, 11, 12, 13, 14, 15}) {
    for (const auto& call : CollectiveCallOrder(p, g)) {
      issued[call] += 1;
    }
  }
  EXPECT_EQ(issued.size(), 60u * 4u);
  for (const auto& [call, count] : issued) EXPECT_EQ(count, 1);
}

TEST_F(ShardingTest, MigrationNoOpForIdenticalPlans) {
  const plan::ParallelPlan p = Uniform(2, 4, 4);
  Result<MigrationPlan> m = ComputeMigration(p, p, cost_);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_TRUE(m->transfers.empty());
  EXPECT_DOUBLE_EQ(m->total_bytes, 0.0);
}

TEST_F(ShardingTest, MigrationMovesOnlyAffectedLayers) {
  // Shifting one layer between two stages of one pipeline moves ~one
  // layer's states for that replica, nothing else.
  plan::ParallelPlan from = Uniform(2, 4, 4);
  plan::ParallelPlan to = from;
  to.pipelines[0].stages[0].num_layers -= 1;
  to.pipelines[0].stages[1].num_layers += 1;
  Result<MigrationPlan> m = ComputeMigration(from, to, cost_);
  ASSERT_TRUE(m.ok());
  const double layer_bytes =
      (2.0 + cost_.config().sharded_bytes_per_param / 2) *
      static_cast<double>(cost_.spec().ParamsPerLayer());
  EXPECT_NEAR(m->total_bytes, layer_bytes, layer_bytes * 0.01);
}

TEST_F(ShardingTest, MigrationVolumeBoundedByModelStates) {
  // Even a complete re-layout moves at most every replica's weights +
  // optimizer shard.
  const plan::ParallelPlan from = Uniform(2, 4, 4);
  plan::ParallelPlan to = Uniform(4, 2, 4);
  to.global_batch = from.global_batch;
  Result<MigrationPlan> m = ComputeMigration(from, to, cost_);
  ASSERT_TRUE(m.ok());
  const double upper =
      to.dp_degree() *
          (2.0 * static_cast<double>(cost_.spec().TotalParams())) +
      cost_.config().sharded_bytes_per_param *
          static_cast<double>(cost_.spec().TotalParams());
  EXPECT_GT(m->total_bytes, 0.0);
  EXPECT_LT(m->total_bytes, upper);
  EXPECT_EQ(m->num_packs, (60 + 3) / 4);
}

TEST_F(ShardingTest, MigrationTimePositiveAndModest) {
  const plan::ParallelPlan from = Uniform(2, 4, 4);
  plan::ParallelPlan to = Uniform(2, 2, 8);
  Result<MigrationPlan> m = ComputeMigration(from, to, cost_);
  ASSERT_TRUE(m.ok());
  const double seconds = MigrationSeconds(*m, cluster_);
  // The paper reports ~1-5 s migrations.
  EXPECT_GT(seconds, 0.0);
  EXPECT_LT(seconds, 30.0);
}

TEST_F(ShardingTest, DpGrowthSourcesFromExistingReplicas) {
  const plan::ParallelPlan from = Uniform(2, 4, 4);
  plan::ParallelPlan to = Uniform(4, 4, 2);
  Result<MigrationPlan> m = ComputeMigration(from, to, cost_);
  ASSERT_TRUE(m.ok());
  // New replicas fetch full weights: substantial volume.
  EXPECT_GT(m->total_bytes,
            static_cast<double>(cost_.spec().TotalParams()));
}

}  // namespace
}  // namespace core
}  // namespace malleus
