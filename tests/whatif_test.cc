// Tests for the what-if attribution engine and its recorded-run plumbing:
// bundle round-trips (and the Status — never a crash — on truncated,
// edited or manifest-less bundles), the counterfactual grammar, the
// planner's forced_tp constraint, scenario::ImpliedSituations, and the
// engine itself — determinism across thread counts, injected-straggler
// attribution, and error-row isolation.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "core/planner.h"
#include "obs/bundle.h"
#include "obs/report.h"
#include "scenario/counterfactual.h"
#include "scenario/scenario.h"
#include "whatif/whatif.h"

namespace malleus {
namespace {

// A per-test scratch directory under the ctest working dir.
std::string ScratchDir(const std::string& name) {
  static std::mt19937_64 rng(::testing::UnitTest::GetInstance()->random_seed());
  const std::string dir =
      "whatif_test_scratch_" + name + "_" + std::to_string(rng());
  return dir;
}

bool WriteFileAt(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  return static_cast<bool>(out);
}

std::string ReadFileAt(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

obs::RunBundle MakeBundle() {
  obs::RunBundle bundle;
  bundle.producer = "whatif_test";
  bundle.files.push_back({"run.scenario", "model = tiny\nnodes = 1\n"});
  bundle.files.push_back({"snapshot.txt", "plan.signature = deadbeef\n"});
  bundle.files.push_back({"trace.json", "{\"traceEvents\":[]}\n"});
  return bundle;
}

TEST(RunBundleTest, RoundTripsByteIdentically) {
  const std::string dir = ScratchDir("roundtrip");
  const obs::RunBundle bundle = MakeBundle();
  ASSERT_TRUE(obs::WriteRunBundle(dir, bundle).ok());

  Result<obs::RunBundle> loaded = obs::LoadRunBundle(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->producer, "whatif_test");
  ASSERT_EQ(loaded->files.size(), bundle.files.size());
  for (const obs::BundleFile& f : bundle.files) {
    const std::string* content = loaded->Find(f.name);
    ASSERT_NE(content, nullptr) << f.name;
    EXPECT_EQ(*content, f.content) << f.name;
  }
  EXPECT_EQ(obs::BundleContentHash(*loaded), obs::BundleContentHash(bundle));

  // Re-writing the loaded bundle reproduces every file byte for byte —
  // the manifest included.
  const std::string dir2 = ScratchDir("roundtrip2");
  ASSERT_TRUE(obs::WriteRunBundle(dir2, *loaded).ok());
  EXPECT_EQ(ReadFileAt(dir + "/MANIFEST"), ReadFileAt(dir2 + "/MANIFEST"));
  for (const obs::BundleFile& f : bundle.files) {
    EXPECT_EQ(ReadFileAt(dir + "/" + f.name),
              ReadFileAt(dir2 + "/" + f.name))
        << f.name;
  }
}

TEST(RunBundleTest, ContentHashIsOrderInsensitive) {
  obs::RunBundle a = MakeBundle();
  obs::RunBundle b;
  b.producer = a.producer;
  for (auto it = a.files.rbegin(); it != a.files.rend(); ++it) {
    b.files.push_back(*it);
  }
  EXPECT_EQ(obs::BundleContentHash(a), obs::BundleContentHash(b));
}

TEST(RunBundleTest, TruncatedMemberFailsWithStatus) {
  const std::string dir = ScratchDir("truncated");
  ASSERT_TRUE(obs::WriteRunBundle(dir, MakeBundle()).ok());
  ASSERT_TRUE(WriteFileAt(dir + "/trace.json", "{\"traceEv"));

  Result<obs::RunBundle> loaded = obs::LoadRunBundle(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("trace.json"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(RunBundleTest, EditedMemberFailsWithStatus) {
  // Same size, different bytes: only the hash catches it.
  const std::string dir = ScratchDir("edited");
  obs::RunBundle bundle = MakeBundle();
  ASSERT_TRUE(obs::WriteRunBundle(dir, bundle).ok());
  std::string edited = bundle.files[0].content;
  edited[0] = 'M';
  ASSERT_EQ(edited.size(), bundle.files[0].content.size());
  ASSERT_TRUE(WriteFileAt(dir + "/" + bundle.files[0].name, edited));

  Result<obs::RunBundle> loaded = obs::LoadRunBundle(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find(bundle.files[0].name),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(RunBundleTest, MissingMemberFailsWithStatus) {
  const std::string dir = ScratchDir("missing");
  ASSERT_TRUE(obs::WriteRunBundle(dir, MakeBundle()).ok());
  ASSERT_EQ(std::remove((dir + "/snapshot.txt").c_str()), 0);

  Result<obs::RunBundle> loaded = obs::LoadRunBundle(dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("snapshot.txt"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(RunBundleTest, MissingManifestFailsWithStatus) {
  const std::string dir = ScratchDir("nomanifest");
  ASSERT_TRUE(obs::WriteRunBundle(dir, MakeBundle()).ok());
  ASSERT_EQ(std::remove((dir + "/MANIFEST").c_str()), 0);
  EXPECT_FALSE(obs::LoadRunBundle(dir).ok());
}

TEST(RunBundleTest, GarbageManifestFailsWithStatus) {
  const std::string dir = ScratchDir("garbage");
  ASSERT_TRUE(obs::WriteRunBundle(dir, MakeBundle()).ok());
  ASSERT_TRUE(WriteFileAt(dir + "/MANIFEST", "\x7f\x45\x4c\x46 not a manifest"));
  EXPECT_FALSE(obs::LoadRunBundle(dir).ok());
}

TEST(RunBundleTest, NonexistentDirectoryFailsWithStatus) {
  EXPECT_FALSE(obs::LoadRunBundle("no/such/bundle/dir").ok());
}

TEST(CounterfactualTest, LabelsRoundTripThroughParse) {
  const char* lines[] = {
      "remove_straggler gpu=9",
      "dampen_straggler gpu=3 factor=0.5",
      "scale_nic factor=2",
      "scale_nvlink factor=0.25",
      "force_tp tp=8",
      "add_standby_node nodes=2",
      "net_model model=flow",
  };
  for (const char* line : lines) {
    Result<scenario::Counterfactual> cf = scenario::ParseCounterfactual(line);
    ASSERT_TRUE(cf.ok()) << line << ": " << cf.status().ToString();
    EXPECT_EQ(cf->Label(), line);
    Result<scenario::Counterfactual> again =
        scenario::ParseCounterfactual(cf->Label());
    ASSERT_TRUE(again.ok()) << cf->Label();
    EXPECT_EQ(again->Label(), cf->Label());
  }
}

TEST(CounterfactualTest, GridParserSkipsCommentsAndRejectsBadLines) {
  Result<std::vector<scenario::Counterfactual>> grid =
      scenario::ParseCounterfactualGrid(
          "# header comment\n"
          "\n"
          "remove_straggler gpu=1  # trailing comment\n"
          "force_tp tp=4\n");
  ASSERT_TRUE(grid.ok()) << grid.status().ToString();
  ASSERT_EQ(grid->size(), 2u);
  EXPECT_EQ((*grid)[0].Label(), "remove_straggler gpu=1");
  EXPECT_EQ((*grid)[1].Label(), "force_tp tp=4");

  Result<std::vector<scenario::Counterfactual>> bad =
      scenario::ParseCounterfactualGrid("remove_straggler gpu=1\nbogus\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("2"), std::string::npos)
      << bad.status().ToString();
}

TEST(CounterfactualTest, DefaultGridCoversEveryKindDeterministically) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(2);
  straggler::Situation situation(cluster.num_gpus());
  situation.SetRate(0, 3.0);
  const std::vector<scenario::Counterfactual> grid =
      scenario::DefaultCounterfactualGrid(cluster, situation,
                                          net::NetModel::kAnalytic);
  const std::vector<scenario::Counterfactual> again =
      scenario::DefaultCounterfactualGrid(cluster, situation,
                                          net::NetModel::kAnalytic);
  ASSERT_EQ(grid.size(), again.size());
  bool seen[7] = {};
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].Label(), again[i].Label()) << i;
    seen[static_cast<int>(grid[i].kind)] = true;
  }
  for (int k = 0; k < 7; ++k) {
    EXPECT_TRUE(seen[k]) << "kind " << k << " missing from default grid";
  }

  // The full grid dampens every GPU, tripling the dampen rows.
  scenario::DefaultGridOptions full;
  full.dampen_all_gpus = true;
  EXPECT_GT(scenario::DefaultCounterfactualGrid(cluster, situation,
                                                net::NetModel::kAnalytic,
                                                full)
                .size(),
            grid.size());
}

scenario::ScenarioSpec TinyStragglerSpec() {
  scenario::ScenarioSpec spec;
  spec.model = "tiny";
  spec.nodes = 2;
  spec.gpus_per_node = 8;
  spec.batch = 32;
  spec.steps = 2;
  scenario::StragglerEntry entry;
  entry.gpu = 3;
  entry.rate = 2.5;
  entry.is_rate = true;
  spec.stragglers.push_back(entry);
  spec.source = "tiny-straggler-spec";
  return spec;
}

TEST(ImpliedSituationsTest, OverlayWinsThenPhasesThenNormal) {
  // Overlay: the custom straggler list is the one situation.
  Result<scenario::ResolvedScenario> overlay =
      scenario::ResolveScenario(TinyStragglerSpec());
  ASSERT_TRUE(overlay.ok()) << overlay.status().ToString();
  Result<std::vector<scenario::LabeledSituation>> situations =
      scenario::ImpliedSituations(*overlay);
  ASSERT_TRUE(situations.ok());
  ASSERT_EQ(situations->size(), 1u);
  EXPECT_EQ((*situations)[0].label, "overlay");
  EXPECT_DOUBLE_EQ((*situations)[0].situation.rate(3), 2.5);

  // Phases: deduplicated in first-appearance order.
  scenario::ScenarioSpec phased;
  phased.model = "tiny";
  phased.nodes = 2;
  phased.phases = {"normal", "s1", "normal", "s1"};
  Result<scenario::ResolvedScenario> resolved =
      scenario::ResolveScenario(phased);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  situations = scenario::ImpliedSituations(*resolved);
  ASSERT_TRUE(situations.ok());
  ASSERT_EQ(situations->size(), 2u);
  EXPECT_EQ((*situations)[0].label, "Normal");
  EXPECT_EQ((*situations)[1].label, "S1");

  // Neither: the healthy "Normal".
  scenario::ScenarioSpec bare;
  bare.model = "tiny";
  bare.nodes = 1;
  resolved = scenario::ResolveScenario(bare);
  ASSERT_TRUE(resolved.ok());
  situations = scenario::ImpliedSituations(*resolved);
  ASSERT_TRUE(situations.ok());
  ASSERT_EQ(situations->size(), 1u);
  EXPECT_EQ((*situations)[0].label, "Normal");
  EXPECT_TRUE((*situations)[0].situation.Stragglers().empty());
}

TEST(ForcedTpTest, PinsThePlannerToOneDegree) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(2);
  const model::CostModel cost(model::ModelSpec::Tiny(), cluster.gpu());
  core::Planner planner(cluster, cost);
  straggler::Situation healthy(cluster.num_gpus());

  core::PlannerOptions free_opts;
  free_opts.num_threads = 1;
  Result<core::PlanResult> free_plan = planner.Plan(healthy, 32, free_opts);
  ASSERT_TRUE(free_plan.ok()) << free_plan.status().ToString();

  for (int tp : {1, 2, 4, 8}) {
    core::PlannerOptions opts;
    opts.num_threads = 1;
    opts.forced_tp = tp;
    Result<core::PlanResult> pinned = planner.Plan(healthy, 32, opts);
    ASSERT_TRUE(pinned.ok()) << "tp=" << tp << ": "
                             << pinned.status().ToString();
    EXPECT_EQ(pinned->chosen_tp, tp);
    for (const plan::Pipeline& pipe : pinned->plan.pipelines) {
      for (int s = 0; s < pipe.num_stages(); ++s) {
        EXPECT_EQ(pipe.stages[s].group.size(), tp) << "tp=" << tp;
      }
    }
    // The free plan can never be worse than any pinned plan.
    EXPECT_LE(free_plan->estimated_seconds,
              pinned->estimated_seconds * (1.0 + 1e-9))
        << "tp=" << tp;
  }
}

TEST(ForcedTpTest, RejectsInvalidDegrees) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(1);
  const model::CostModel cost(model::ModelSpec::Tiny(), cluster.gpu());
  core::Planner planner(cluster, cost);
  straggler::Situation healthy(cluster.num_gpus());

  core::PlannerOptions opts;
  opts.forced_tp = 3;  // Not a power-of-two degree.
  EXPECT_FALSE(planner.Plan(healthy, 32, opts).ok());

  // Valid degree that exceeds the node width.
  const topo::ClusterSpec narrow(2, 4, cluster.gpu(), cluster.link());
  const model::CostModel narrow_cost(model::ModelSpec::Tiny(), narrow.gpu());
  core::Planner narrow_planner(narrow, narrow_cost);
  straggler::Situation narrow_healthy(narrow.num_gpus());
  core::PlannerOptions wide;
  wide.forced_tp = 8;
  EXPECT_FALSE(narrow_planner.Plan(narrow_healthy, 32, wide).ok());
}

TEST(WhatIfEngineTest, ReplayDecomposesStepIntoSpans) {
  Result<whatif::RecordedRun> run =
      whatif::RecordedRunFromSpec(TinyStragglerSpec());
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const topo::ClusterSpec& cluster = run->resolved.cluster;
  const model::CostModel cost(run->resolved.spec, cluster.gpu());
  core::Planner planner(cluster, cost);
  Result<scenario::LabeledSituation> analyzed =
      whatif::AnalyzedSituation(*run);
  ASSERT_TRUE(analyzed.ok());
  core::PlannerOptions opts;
  opts.num_threads = 1;
  Result<core::PlanResult> plan =
      planner.Plan(analyzed->situation, run->spec.batch, opts);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  Result<whatif::ReplayResult> replay = whatif::ReplayPlanStep(
      cluster, cost, plan->plan, analyzed->situation,
      net::NetModel::kAnalytic, run->spec.seed);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_GT(replay->step_seconds, 0.0);
  EXPECT_GT(replay->compute_span_seconds, 0.0);
  EXPECT_GT(replay->sync_span_seconds, 0.0);

  // Replays are deterministic: same inputs, same seconds.
  Result<whatif::ReplayResult> again = whatif::ReplayPlanStep(
      cluster, cost, plan->plan, analyzed->situation,
      net::NetModel::kAnalytic, run->spec.seed);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(replay->step_seconds, again->step_seconds);
  EXPECT_EQ(replay->compute_span_seconds, again->compute_span_seconds);
}

TEST(WhatIfEngineTest, ReportBytesAreThreadCountInvariant) {
  Result<whatif::RecordedRun> run =
      whatif::RecordedRunFromSpec(TinyStragglerSpec());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  Result<scenario::LabeledSituation> analyzed =
      whatif::AnalyzedSituation(*run);
  ASSERT_TRUE(analyzed.ok());
  const std::vector<scenario::Counterfactual> grid =
      scenario::DefaultCounterfactualGrid(run->resolved.cluster,
                                          analyzed->situation,
                                          run->resolved.net_model);
  ASSERT_GE(grid.size(), 20u);

  whatif::WhatIfOptions serial;
  serial.num_threads = 1;
  Result<obs::AttributionReport> a = whatif::RunWhatIf(*run, grid, serial);
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  whatif::WhatIfOptions parallel;
  parallel.num_threads = 4;
  Result<obs::AttributionReport> b = whatif::RunWhatIf(*run, grid, parallel);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  EXPECT_EQ(obs::RenderAttributionJson(*a), obs::RenderAttributionJson(*b));
  EXPECT_EQ(obs::RenderAttributionCsv(*a), obs::RenderAttributionCsv(*b));
}

TEST(WhatIfEngineTest, InjectedStragglerOutranksHealthyRemovals) {
  Result<whatif::RecordedRun> run =
      whatif::RecordedRunFromSpec(TinyStragglerSpec());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  Result<scenario::LabeledSituation> analyzed =
      whatif::AnalyzedSituation(*run);
  ASSERT_TRUE(analyzed.ok());
  const std::vector<scenario::Counterfactual> grid =
      scenario::DefaultCounterfactualGrid(run->resolved.cluster,
                                          analyzed->situation,
                                          run->resolved.net_model);

  Result<obs::AttributionReport> report = whatif::RunWhatIf(*run, grid, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->baseline_step_seconds, 0.0);

  // Among straggler-removal rows, the injected straggler (GPU 3) must rank
  // first with positive attribution; healthy GPUs attribute ~0.
  const obs::AttributionRow* injected = nullptr;
  for (const obs::AttributionRow& row : report->rows) {
    if (row.kind != "remove_straggler") continue;
    if (injected == nullptr) injected = &row;
    if (row.cause != "remove_straggler gpu=3") {
      EXPECT_NEAR(row.attributed_seconds, 0.0, 1e-9) << row.cause;
    }
  }
  ASSERT_NE(injected, nullptr);
  EXPECT_EQ(injected->cause, "remove_straggler gpu=3");
  EXPECT_GT(injected->attributed_seconds, 0.0);
  EXPECT_TRUE(injected->error.empty()) << injected->error;
}

TEST(WhatIfEngineTest, BadGridRowCarriesErrorAndRanksLast) {
  Result<whatif::RecordedRun> run =
      whatif::RecordedRunFromSpec(TinyStragglerSpec());
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  Result<std::vector<scenario::Counterfactual>> grid =
      scenario::ParseCounterfactualGrid(
          "remove_straggler gpu=3\n"
          "remove_straggler gpu=999\n");  // Outside the 16-GPU cluster.
  ASSERT_TRUE(grid.ok());

  Result<obs::AttributionReport> report = whatif::RunWhatIf(*run, *grid, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->rows.size(), 2u);
  EXPECT_TRUE(report->rows[0].error.empty());
  EXPECT_EQ(report->rows[1].cause, "remove_straggler gpu=999");
  EXPECT_FALSE(report->rows[1].error.empty());
  EXPECT_NE(report->rows[1].error.find("999"), std::string::npos);
  EXPECT_EQ(report->rows[1].attributed_seconds, 0.0);
}

TEST(WhatIfEngineTest, SnapshotSignatureMismatchIsRejected) {
  Result<whatif::RecordedRun> run =
      whatif::RecordedRunFromSpec(TinyStragglerSpec());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  run->snapshot_text = "plan.signature = 0000000000000000\n";

  Result<std::vector<scenario::Counterfactual>> grid =
      scenario::ParseCounterfactualGrid("remove_straggler gpu=3\n");
  ASSERT_TRUE(grid.ok());
  Result<obs::AttributionReport> report = whatif::RunWhatIf(*run, *grid, {});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().ToString().find("signature"), std::string::npos)
      << report.status().ToString();
}

TEST(WhatIfEngineTest, LoadRecordedRunRequiresScenarioMember) {
  obs::RunBundle bundle;
  bundle.producer = "whatif_test";
  bundle.files.push_back({"trace.json", "{}"});
  EXPECT_FALSE(whatif::LoadRecordedRun(bundle).ok());

  bundle.files.push_back(
      {"run.scenario", scenario::SerializeScenario(TinyStragglerSpec())});
  Result<whatif::RecordedRun> run = whatif::LoadRecordedRun(bundle, "dir");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->source, "dir");
  EXPECT_EQ(run->spec.model, "tiny");
  EXPECT_TRUE(run->snapshot_text.empty());
}

}  // namespace
}  // namespace malleus
