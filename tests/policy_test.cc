// Tests for malleus::policy: event-trace generation determinism, the
// five-action cost model, the adaptive selector's optimality bound, the
// dynamic run loop's goodput accounting, run-log byte-reproducibility,
// and the restart-after-failure pricing the policy engine relies on.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/run_log.h"
#include "policy/events.h"
#include "policy/policy.h"
#include "policy/runner.h"
#include "scenario/scenario.h"
#include "sim/restart.h"

namespace malleus {
namespace policy {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  scenario::DynamicSpec MixedSpec() const {
    scenario::DynamicSpec dynamic;
    dynamic.enabled = true;
    dynamic.iterations = 300;
    dynamic.straggle_rate = 0.002;
    dynamic.fail_rate = 0.0004;
    dynamic.node_fail_rate = 0.0002;
    dynamic.recover_iters = 40;
    dynamic.flap_prob = 0.5;
    dynamic.flap_period = 15;
    dynamic.diurnal_amplitude = 0.8;
    dynamic.diurnal_period = 100;
    dynamic.max_level = 3;
    return dynamic;
  }

  DynamicRunOptions RunOptions(core::RunLog* log = nullptr) const {
    DynamicRunOptions options;
    options.run_log = log;
    return options;
  }

  Result<DynamicRunResult> RunTrace(const EventTrace& trace,
                                    const std::string& selector_name,
                                    const DynamicRunOptions& options) const {
    Result<std::unique_ptr<PolicySelector>> selector =
        MakeSelector(selector_name);
    MALLEUS_CHECK_OK(selector.status());
    return RunDynamic(cluster_, cost_,
                      straggler::Situation(cluster_.num_gpus()), trace, 64,
                      **selector, options);
  }

  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(4);
  model::CostModel cost_{model::ModelSpec::Llama32B(), topo::GpuSpec()};
};

bool TracesEqual(const EventTrace& a, const EventTrace& b) {
  if (a.iterations != b.iterations) return false;
  if (a.events.size() != b.events.size()) return false;
  for (size_t i = 0; i < a.events.size(); ++i) {
    const ClusterEvent& x = a.events[i];
    const ClusterEvent& y = b.events[i];
    if (x.iteration != y.iteration || x.kind != y.kind || x.gpu != y.gpu ||
        x.node != y.node || x.level != y.level || x.rate != y.rate ||
        x.flap != y.flap) {
      return false;
    }
  }
  return true;
}

TEST_F(PolicyTest, TraceGenerationIsBitDeterministic) {
  const scenario::DynamicSpec dynamic = MixedSpec();
  const EventTrace a = GenerateEventTrace(cluster_, dynamic, 20260809);
  const EventTrace b = GenerateEventTrace(cluster_, dynamic, 20260809);
  EXPECT_TRUE(TracesEqual(a, b));
  EXPECT_GT(a.events.size(), 0u) << "rates too low to exercise anything";
  // A different seed must (for these rates) produce a different stream.
  const EventTrace c = GenerateEventTrace(cluster_, dynamic, 1);
  EXPECT_FALSE(TracesEqual(a, c));
  // Events arrive in iteration order and inside the horizon.
  int64_t last = 0;
  for (const ClusterEvent& event : a.events) {
    EXPECT_GE(event.iteration, last);
    EXPECT_LT(event.iteration, dynamic.iterations);
    last = event.iteration;
  }
}

TEST_F(PolicyTest, TraceFeasibilityGuardKeepsHalfTheClusterAlive) {
  scenario::DynamicSpec dynamic = MixedSpec();
  dynamic.straggle_rate = 0.0;
  dynamic.fail_rate = 0.05;       // Aggressive fail-stop pressure.
  dynamic.node_fail_rate = 0.01;  // Plus correlated node failures.
  dynamic.recover_iters = 0;      // Never heals.
  const EventTrace trace = GenerateEventTrace(cluster_, dynamic, 7);
  straggler::Situation situation(cluster_.num_gpus());
  for (const ClusterEvent& event : trace.events) {
    ApplyEvent(cluster_, event, &situation);
  }
  int alive = 0;
  for (topo::GpuId g = 0; g < cluster_.num_gpus(); ++g) {
    if (!situation.IsFailed(g)) ++alive;
  }
  EXPECT_GE(alive, cluster_.num_gpus() / 2);
}

TEST_F(PolicyTest, RunIsBitDeterministicAtAnyThreadCount) {
  const EventTrace trace =
      GenerateEventTrace(cluster_, MixedSpec(), 20260809);
  core::RunLog log1, log4;
  DynamicRunOptions opt1 = RunOptions(&log1);
  opt1.planner.num_threads = 1;
  DynamicRunOptions opt4 = RunOptions(&log4);
  opt4.planner.num_threads = 4;
  Result<DynamicRunResult> r1 = RunTrace(trace, "adaptive", opt1);
  Result<DynamicRunResult> r4 = RunTrace(trace, "adaptive", opt4);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r4.ok()) << r4.status().ToString();
  EXPECT_EQ(r1->wall_seconds, r4->wall_seconds);
  EXPECT_EQ(r1->goodput, r4->goodput);
  EXPECT_EQ(log1.ToJsonl(), log4.ToJsonl());
  EXPECT_EQ(log1.ToCsv(), log4.ToCsv());
}

TEST_F(PolicyTest, AdaptiveNeverExceedsTolerateBound) {
  const EventTrace trace =
      GenerateEventTrace(cluster_, MixedSpec(), 20260809);
  Result<DynamicRunResult> result =
      RunTrace(trace, "adaptive", RunOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->events_applied, 0);
  for (const EventAudit& audit : result->audits) {
    if (!audit.tolerate_feasible) continue;
    // Tolerate's realized cost over the horizon IS its predicted cost
    // (the simulator is noise-free), so the argmin property must hold
    // exactly: the chosen action never prices above riding it out.
    EXPECT_LE(audit.predicted_cost_chosen, audit.predicted_cost_tolerate)
        << "event @" << audit.iteration << " chose "
        << PolicyActionName(audit.action);
  }
}

TEST_F(PolicyTest, EngineStateStaysValidAfterEveryEvent) {
  const EventTrace trace =
      GenerateEventTrace(cluster_, MixedSpec(), 20260809);
  for (const std::string& name : SelectorNames()) {
    Result<DynamicRunResult> result = RunTrace(trace, name, RunOptions());
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    for (const EventAudit& audit : result->audits) {
      EXPECT_TRUE(audit.plan_valid)
          << name << " event @" << audit.iteration;
      EXPECT_FALSE(audit.uses_failed_gpu)
          << name << " event @" << audit.iteration;
    }
  }
}

TEST_F(PolicyTest, GoodputNonNegativeAndMonotoneInHealedEvents) {
  // Two hand-built traces, identical except the second heals the
  // straggler halfway: healing must never lower cumulative goodput.
  EventTrace degraded;
  degraded.iterations = 120;
  ClusterEvent straggle;
  straggle.iteration = 10;
  straggle.kind = EventKind::kStraggle;
  straggle.gpu = 9;
  straggle.level = 3;
  straggle.rate = straggler::RateForLevel(3);
  degraded.events.push_back(straggle);

  EventTrace healed = degraded;
  ClusterEvent recover;
  recover.iteration = 60;
  recover.kind = EventKind::kRecover;
  recover.gpu = 9;
  healed.events.push_back(recover);

  for (const std::string& name : {std::string("tolerate"),
                                  std::string("adaptive")}) {
    Result<DynamicRunResult> slow = RunTrace(degraded, name, RunOptions());
    Result<DynamicRunResult> fast = RunTrace(healed, name, RunOptions());
    ASSERT_TRUE(slow.ok()) << slow.status().ToString();
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    EXPECT_GE(slow->goodput, 0.0);
    EXPECT_GE(fast->goodput, 0.0);
    EXPECT_LE(fast->goodput, 1.0 + 1e-9);
    EXPECT_GE(fast->goodput, slow->goodput) << name;
  }
}

TEST_F(PolicyTest, ReplayingTheSameTraceYieldsByteIdenticalRunLogs) {
  const EventTrace trace =
      GenerateEventTrace(cluster_, MixedSpec(), 20260809);
  std::string first_jsonl, first_csv;
  for (int run = 0; run < 2; ++run) {
    core::RunLog log;
    Result<DynamicRunResult> result =
        RunTrace(trace, "adaptive", RunOptions(&log));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (run == 0) {
      first_jsonl = log.ToJsonl();
      first_csv = log.ToCsv();
      EXPECT_FALSE(first_jsonl.empty());
    } else {
      EXPECT_EQ(log.ToJsonl(), first_jsonl);
      EXPECT_EQ(log.ToCsv(), first_csv);
    }
  }
}

TEST_F(PolicyTest, GoodputConservationAcrossPolicySwitches) {
  const EventTrace trace =
      GenerateEventTrace(cluster_, MixedSpec(), 20260809);
  for (const std::string& name : SelectorNames()) {
    Result<DynamicRunResult> result = RunTrace(trace, name, RunOptions());
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    // Wall time decomposes exactly (same additions, no rounding slack).
    EXPECT_EQ(result->wall_seconds,
              result->training_seconds + result->transition_seconds)
        << name;
    EXPECT_GE(result->goodput, 0.0) << name;
    EXPECT_LE(result->iterations_run, result->trace_iterations) << name;
    if (result->stop_reason.empty()) {
      EXPECT_EQ(result->iterations_run, result->trace_iterations) << name;
    }
  }
}

TEST_F(PolicyTest, SelectorRegistry) {
  for (const std::string& name : SelectorNames()) {
    Result<std::unique_ptr<PolicySelector>> selector = MakeSelector(name);
    ASSERT_TRUE(selector.ok()) << name;
    EXPECT_EQ((*selector)->name(), name);
  }
  EXPECT_FALSE(MakeSelector("coinflip").ok());
}

TEST_F(PolicyTest, FixedSelectorsFallBackWhenInfeasible) {
  ActionEstimates estimates{};
  estimates[static_cast<int>(PolicyAction::kTolerate)] = {true, 0.0, 2.0};
  estimates[static_cast<int>(PolicyAction::kReplan)] = {true, 10.0, 1.0};
  ClusterEvent event;
  // "promote" is infeasible here: it must fall back to the cheapest
  // feasible action, deterministically.
  Result<std::unique_ptr<PolicySelector>> promote = MakeSelector("promote");
  ASSERT_TRUE(promote.ok());
  const PolicyAction fallback =
      (*promote)->Select(estimates, event, /*horizon_iterations=*/50.0);
  EXPECT_TRUE(estimates[static_cast<int>(fallback)].feasible);
  // With horizon 50: replan costs 10 + 50 = 60, tolerate 100 -> replan.
  EXPECT_EQ(fallback, PolicyAction::kReplan);
  // A fixed selector whose action is feasible always takes it.
  Result<std::unique_ptr<PolicySelector>> tolerate =
      MakeSelector("tolerate");
  ASSERT_TRUE(tolerate.ok());
  EXPECT_EQ((*tolerate)->Select(estimates, event, 50.0),
            PolicyAction::kTolerate);
}

TEST_F(PolicyTest, RestartPricingUsesFailurePathAfterFailures) {
  // The policy engine's restart action must price fail-stop events with
  // RestartAfterFailureSeconds (load + init), not the planned-restart
  // save + init + load — see RestartTest.RestartAfterFailureDoesNot
  // DoubleCountLoad for the accounting identity.
  const double bytes = cost_.CheckpointBytes();
  EXPECT_LT(sim::RestartAfterFailureSeconds(bytes, 4),
            sim::RestartSeconds(bytes, 4));
  EXPECT_NEAR(sim::RestartSeconds(bytes, 4),
              sim::RestartAfterFailureSeconds(bytes, 4) +
                  sim::CheckpointLoadSeconds(bytes, 4),
              1e-9);
}

}  // namespace
}  // namespace policy
}  // namespace malleus
