# End-to-end recorded-run / what-if contract, run via `cmake -P` (see
# tests/CMakeLists.txt):
#   - scenario_cli --record-out writes a loadable bundle;
#   - malleus_whatif sweeps it, verifies the snapshot, and ranks the
#     injected S3 straggler above every healthy-GPU removal;
#   - the JSON and CSV reports are byte-identical across repeat runs at
#     different --threads values;
#   - a corrupted bundle member fails with exit 1, bad usage with exit 2.
# Expects -DSCENARIO_CLI, -DMALLEUS_WHATIF, -DSCENARIO_DIR, -DWORK_DIR.

function(expect_exit code)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE result
                  OUTPUT_VARIABLE stdout
                  ERROR_VARIABLE stderr)
  if(NOT result EQUAL ${code})
    message(FATAL_ERROR
            "expected exit ${code}, got ${result} from: ${ARGN}\n"
            "stdout:\n${stdout}\nstderr:\n${stderr}")
  endif()
  set(last_stdout "${stdout}" PARENT_SCOPE)
endfunction()

function(expect_stdout_contains needle)
  if(NOT last_stdout MATCHES "${needle}")
    message(FATAL_ERROR
            "stdout does not contain '${needle}':\n${last_stdout}")
  endif()
endfunction()

function(expect_same_bytes a b)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
                  RESULT_VARIABLE result)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "${a} and ${b} differ byte-wise")
  endif()
endfunction()

set(bundle "${WORK_DIR}/whatif_smoke_bundle")
file(REMOVE_RECURSE ${bundle})

# Record the S3 case study as a bundle.
expect_exit(0 ${SCENARIO_CLI}
            --scenario=${SCENARIO_DIR}/straggle_s3.scenario
            --record-out=${bundle})
expect_stdout_contains("recorded run bundle")
foreach(member MANIFEST run.scenario snapshot.txt trace.json metrics.json
        events.jsonl run.csv)
  if(NOT EXISTS "${bundle}/${member}")
    message(FATAL_ERROR "bundle is missing ${member}")
  endif()
endforeach()

# Sweep it twice at different thread counts; reports must match byte-wise.
expect_exit(0 ${MALLEUS_WHATIF} ${bundle} --auto-grid --verify-snapshot
            --threads=1 --top=5
            --report-out=${WORK_DIR}/whatif_smoke_a.json
            --csv-out=${WORK_DIR}/whatif_smoke_a.csv)
expect_stdout_contains("snapshot verified")
expect_stdout_contains("what-if attribution")
set(first_run "${last_stdout}")

expect_exit(0 ${MALLEUS_WHATIF} ${bundle} --auto-grid
            --threads=4 --top=0
            --report-out=${WORK_DIR}/whatif_smoke_b.json
            --csv-out=${WORK_DIR}/whatif_smoke_b.csv)
expect_same_bytes(${WORK_DIR}/whatif_smoke_a.json
                  ${WORK_DIR}/whatif_smoke_b.json)
expect_same_bytes(${WORK_DIR}/whatif_smoke_a.csv
                  ${WORK_DIR}/whatif_smoke_b.csv)

# The injected S3 stragglers must outrank every healthy-GPU removal: the
# first remove_straggler row in the ranking targets GPU 0 or GPU 8 (the
# canonical S3 placements) with positive attribution. The CSV is ranked,
# so scan its remove_straggler rows in order.
file(READ ${WORK_DIR}/whatif_smoke_a.csv csv)
string(REPLACE "\n" ";" csv_lines "${csv}")
set(first_removal "")
foreach(line ${csv_lines})
  if(line MATCHES "remove_straggler" AND first_removal STREQUAL "")
    set(first_removal "${line}")
  endif()
endforeach()
if(NOT first_removal MATCHES "remove_straggler gpu=(0|8)")
  message(FATAL_ERROR
          "top-ranked straggler removal is not an injected S3 straggler:\n"
          "${first_removal}")
endif()

# A flipped byte in a member is caught by the manifest hashes: exit 1.
file(READ "${bundle}/trace.json" trace_bytes)
string(SUBSTRING "${trace_bytes}" 1 -1 trace_tail)
file(WRITE "${bundle}/trace.json" "X${trace_tail}")
expect_exit(1 ${MALLEUS_WHATIF} ${bundle} --auto-grid)

# Bad usage is distinct from bad bundles.
expect_exit(2 ${MALLEUS_WHATIF})
expect_exit(2 ${MALLEUS_WHATIF} ${bundle} --no-such-flag)
