// Tests for src/straggler: level -> rate model, the canonical situations
// S1-S6, failure marking, theoretic slowdown, and the standard trace.

#include <gtest/gtest.h>

#include <cmath>

#include "straggler/situation.h"

namespace malleus {
namespace straggler {
namespace {

TEST(RateModelTest, MatchesPaperReportedRates) {
  // Table 4 / Appendix B.7 report level-1 ~ 2.57-2.62, level-2 ~ 3.75-3.8,
  // level-3 ~ 5.42, level-8 ~ 12.53.
  EXPECT_DOUBLE_EQ(RateForLevel(0), 1.0);
  EXPECT_NEAR(RateForLevel(1), 2.6, 0.2);
  EXPECT_NEAR(RateForLevel(2), 3.8, 0.15);
  EXPECT_NEAR(RateForLevel(3), 5.4, 0.15);
  EXPECT_NEAR(RateForLevel(8), 12.5, 0.1);
}

TEST(SituationTest, DefaultAllHealthy) {
  Situation s(16);
  EXPECT_EQ(s.num_gpus(), 16);
  for (int g = 0; g < 16; ++g) {
    EXPECT_DOUBLE_EQ(s.rate(g), 1.0);
    EXPECT_FALSE(s.IsStraggler(g));
  }
  EXPECT_TRUE(s.Stragglers().empty());
  EXPECT_DOUBLE_EQ(s.TheoreticSlowdown(), 1.0);
}

TEST(SituationTest, FailureMarksInfiniteRate) {
  Situation s(8);
  s.Fail(3);
  EXPECT_TRUE(s.IsFailed(3));
  EXPECT_TRUE(s.IsStraggler(3));
  EXPECT_TRUE(std::isinf(s.rate(3)));
}

TEST(SituationTest, TheoreticSlowdownFormula) {
  // N = 4, one straggler x = 2: 4 / (3 + 0.5) = 8/7.
  Situation s(4);
  s.SetRate(0, 2.0);
  EXPECT_NEAR(s.TheoreticSlowdown(), 4.0 / 3.5, 1e-12);
}

TEST(SituationTest, TheoreticSlowdownWithFailure) {
  // A failed GPU contributes no capacity: 4 / 3.
  Situation s(4);
  s.Fail(0);
  EXPECT_NEAR(s.TheoreticSlowdown(), 4.0 / 3.0, 1e-12);
}

class CanonicalSituationTest
    : public ::testing::TestWithParam<SituationId> {};

TEST_P(CanonicalSituationTest, BuildsOnEightNodes) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(8);
  Result<Situation> s = Situation::Canonical(cluster, GetParam());
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->num_gpus(), 64);
  for (topo::GpuId g : s->Stragglers()) {
    EXPECT_GT(s->rate(g), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSituations, CanonicalSituationTest,
                         ::testing::Values(SituationId::kNormal,
                                           SituationId::kS1, SituationId::kS2,
                                           SituationId::kS3, SituationId::kS4,
                                           SituationId::kS5,
                                           SituationId::kS6),
                         [](const auto& info) {
                           return SituationName(info.param);
                         });

TEST(CanonicalSituationTest, StragglerCountsMatchDefinition) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(8);
  auto count = [&](SituationId id) {
    return Situation::Canonical(cluster, id)->Stragglers().size();
  };
  EXPECT_EQ(count(SituationId::kNormal), 0u);
  EXPECT_EQ(count(SituationId::kS1), 1u);
  EXPECT_EQ(count(SituationId::kS2), 1u);
  EXPECT_EQ(count(SituationId::kS3), 2u);
  EXPECT_EQ(count(SituationId::kS4), 3u);
  EXPECT_EQ(count(SituationId::kS5), 9u);
  EXPECT_EQ(count(SituationId::kS6), 8u);
}

TEST(CanonicalSituationTest, S3SpansTwoNodes) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(8);
  Result<Situation> s = Situation::Canonical(cluster, SituationId::kS3);
  ASSERT_TRUE(s.ok());
  auto stragglers = s->Stragglers();
  ASSERT_EQ(stragglers.size(), 2u);
  EXPECT_NE(cluster.NodeOf(stragglers[0]), cluster.NodeOf(stragglers[1]));
}

TEST(CanonicalSituationTest, S5IsNodeOfLevel1PlusLevel2Elsewhere) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(8);
  Result<Situation> s = Situation::Canonical(cluster, SituationId::kS5);
  ASSERT_TRUE(s.ok());
  for (int g = 0; g < 8; ++g) {
    EXPECT_DOUBLE_EQ(s->rate(g), RateForLevel(1));
  }
  EXPECT_DOUBLE_EQ(s->rate(8), RateForLevel(2));
}

TEST(CanonicalSituationTest, RejectsTooSmallCluster) {
  const topo::ClusterSpec one_node = topo::ClusterSpec::A800Cluster(1);
  EXPECT_FALSE(Situation::Canonical(one_node, SituationId::kS4).ok());
  EXPECT_TRUE(Situation::Canonical(one_node, SituationId::kS1).ok());
}

TEST(TraceTest, StandardTraceShape) {
  const auto trace = StandardTrace(12);
  ASSERT_EQ(trace.size(), 8u);
  EXPECT_EQ(trace.front().id, SituationId::kNormal);
  EXPECT_EQ(trace.back().id, SituationId::kNormal);
  EXPECT_EQ(trace[5].id, SituationId::kS5);  // Most severe second to last.
  EXPECT_EQ(trace[6].id, SituationId::kS6);
  for (const TracePhase& p : trace) EXPECT_EQ(p.steps, 12);
}

TEST(SituationTest, ToStringListsStragglersOnly) {
  Situation s(8);
  EXPECT_EQ(s.ToString(), "Situation(no stragglers)");
  s.SetLevel(2, 1);
  s.Fail(5);
  const std::string str = s.ToString();
  EXPECT_NE(str.find("x2="), std::string::npos);
  EXPECT_NE(str.find("x5=FAILED"), std::string::npos);
  EXPECT_EQ(str.find("x0"), std::string::npos);
}

}  // namespace
}  // namespace straggler
}  // namespace malleus
