// Tests for src/solver: simplex LP, branch-and-bound ILP, the exact
// bottleneck-allocation solvers, and the pipeline-division MINLP.
// Property tests cross-check the specialized solvers against the generic
// ILP on random instances.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "solver/division.h"
#include "solver/ilp.h"
#include "solver/lp.h"
#include "solver/minmax.h"

namespace malleus {
namespace solver {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------- LP ----------

TEST(LpTest, SimpleTwoVariableOptimum) {
  // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2  -> x=2..? optimum x=2,y=2.
  LinearProgram lp = LinearProgram::Create(2);
  lp.objective = {-1.0, -2.0};
  lp.AddLessEqual({1.0, 1.0}, 4.0);
  lp.upper_bounds = {3.0, 2.0};
  Result<LpSolution> sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, -6.0, 1e-8);
  EXPECT_NEAR(sol->x[0], 2.0, 1e-8);
  EXPECT_NEAR(sol->x[1], 2.0, 1e-8);
}

TEST(LpTest, EqualityConstraint) {
  // min x + y  s.t. x + 2y = 3, x, y >= 0  -> y = 1.5, x = 0.
  LinearProgram lp = LinearProgram::Create(2);
  lp.objective = {1.0, 1.0};
  lp.AddEqual({1.0, 2.0}, 3.0);
  Result<LpSolution> sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 1.5, 1e-8);
}

TEST(LpTest, GreaterEqualConstraint) {
  // min x  s.t. x >= 5.
  LinearProgram lp = LinearProgram::Create(1);
  lp.objective = {1.0};
  lp.AddGreaterEqual({1.0}, 5.0);
  Result<LpSolution> sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 5.0, 1e-8);
}

TEST(LpTest, InfeasibleDetected) {
  LinearProgram lp = LinearProgram::Create(1);
  lp.objective = {1.0};
  lp.AddLessEqual({1.0}, 1.0);
  lp.AddGreaterEqual({1.0}, 2.0);
  Result<LpSolution> sol = SolveLp(lp);
  ASSERT_FALSE(sol.ok());
  EXPECT_TRUE(sol.status().IsInfeasible());
}

TEST(LpTest, UnboundedDetected) {
  LinearProgram lp = LinearProgram::Create(1);
  lp.objective = {-1.0};  // min -x with x unbounded above.
  Result<LpSolution> sol = SolveLp(lp);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kOutOfRange);
}

TEST(LpTest, NonZeroLowerBounds) {
  // min x + y  s.t. x >= 2, y >= 3 via bounds.
  LinearProgram lp = LinearProgram::Create(2);
  lp.objective = {1.0, 1.0};
  lp.lower_bounds = {2.0, 3.0};
  Result<LpSolution> sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 5.0, 1e-8);
}

TEST(LpTest, DegenerateRedundantConstraints) {
  LinearProgram lp = LinearProgram::Create(2);
  lp.objective = {1.0, 0.0};
  lp.AddEqual({1.0, 1.0}, 2.0);
  lp.AddEqual({2.0, 2.0}, 4.0);  // Redundant.
  Result<LpSolution> sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 0.0, 1e-8);
}

// ---------- ILP ----------

TEST(IlpTest, RoundsAwayFractionalRelaxation) {
  // min -x - y  s.t. 2x + 3y <= 12, 3x + 2y <= 12, integers.
  // LP optimum (2.4, 2.4); ILP optimum is x=2,y=2 (or better along edges).
  IntegerProgram ip = IntegerProgram::Create(2);
  ip.lp.objective = {-1.0, -1.0};
  ip.lp.AddLessEqual({2.0, 3.0}, 12.0);
  ip.lp.AddLessEqual({3.0, 2.0}, 12.0);
  Result<IlpSolution> sol = SolveIlp(ip);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, -4.0, 1e-6);
}

TEST(IlpTest, Knapsack) {
  // max 10a + 13b + 7c with 3a + 4b + 2c <= 6, binary -> a=0? Enumerate:
  // best is a + c = 17? a(3)+c(2)=5 -> 17; b(4)+c(2)=6 -> 20.
  IntegerProgram ip = IntegerProgram::Create(3);
  ip.lp.objective = {-10.0, -13.0, -7.0};
  ip.lp.AddLessEqual({3.0, 4.0, 2.0}, 6.0);
  ip.lp.upper_bounds = {1.0, 1.0, 1.0};
  Result<IlpSolution> sol = SolveIlp(ip);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, -20.0, 1e-6);
  EXPECT_NEAR(sol->x[1], 1.0, 1e-6);
  EXPECT_NEAR(sol->x[2], 1.0, 1e-6);
}

TEST(IlpTest, InfeasibleIntegerBox) {
  // 0.4 <= x <= 0.6 has no integer point.
  IntegerProgram ip = IntegerProgram::Create(1);
  ip.lp.objective = {1.0};
  ip.lp.lower_bounds = {0.4};
  ip.lp.upper_bounds = {0.6};
  Result<IlpSolution> sol = SolveIlp(ip);
  ASSERT_FALSE(sol.ok());
  EXPECT_TRUE(sol.status().IsInfeasible());
}

TEST(IlpTest, MixedIntegerKeepsContinuousVars) {
  // min x + y, x integer >= 1.5 -> 2; y continuous >= 0.5.
  IntegerProgram ip = IntegerProgram::Create(2);
  ip.integral = {true, false};
  ip.lp.objective = {1.0, 1.0};
  ip.lp.lower_bounds = {1.5, 0.5};
  Result<IlpSolution> sol = SolveIlp(ip);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->x[0], 2.0, 1e-6);
  EXPECT_NEAR(sol->x[1], 0.5, 1e-6);
}

// ---------- Bottleneck allocation (Eq. 2 / Eq. 3) ----------

TEST(MinMaxTest, EvenRatesSplitEvenly) {
  Result<BottleneckSolution> sol =
      SolveBottleneckAllocation({1.0, 1.0, 1.0, 1.0}, 32);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_DOUBLE_EQ(sol->bottleneck, 8.0);
  for (int64_t a : sol->amounts) EXPECT_EQ(a, 8);
}

TEST(MinMaxTest, SlowEntityGetsLess) {
  // Rates 1 and 3: 12 units -> 9 and 3 balances products at 9.
  Result<BottleneckSolution> sol = SolveBottleneckAllocation({1.0, 3.0}, 12);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->amounts[0], 9);
  EXPECT_EQ(sol->amounts[1], 3);
  EXPECT_DOUBLE_EQ(sol->bottleneck, 9.0);
}

TEST(MinMaxTest, CapacitiesRespected) {
  Result<BottleneckSolution> sol =
      SolveBottleneckAllocation({1.0, 1.0}, {3, -1}, 10);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_LE(sol->amounts[0], 3);
  EXPECT_EQ(sol->amounts[0] + sol->amounts[1], 10);
  EXPECT_DOUBLE_EQ(sol->bottleneck, 7.0);
}

TEST(MinMaxTest, InfiniteRateGetsZero) {
  Result<BottleneckSolution> sol =
      SolveBottleneckAllocation({1.0, kInf}, 5);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->amounts[0], 5);
  EXPECT_EQ(sol->amounts[1], 0);
}

TEST(MinMaxTest, InfeasibleWhenCapsTooSmall) {
  Result<BottleneckSolution> sol =
      SolveBottleneckAllocation({1.0, 1.0}, {2, 2}, 5);
  ASSERT_FALSE(sol.ok());
  EXPECT_TRUE(sol.status().IsInfeasible());
}

TEST(MinMaxTest, ZeroTotalIsAllZero) {
  Result<BottleneckSolution> sol = SolveBottleneckAllocation({2.0, 5.0}, 0);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_DOUBLE_EQ(sol->bottleneck, 0.0);
}

// Cross-check the specialized solver against the generic ILP, which solves
//   min t  s.t.  rate_j * n_j <= t, sum n_j = total, 0 <= n_j <= cap_j.
double IlpBottleneck(const std::vector<double>& rates,
                     const std::vector<int64_t>& caps, int64_t total) {
  const int n = static_cast<int>(rates.size());
  IntegerProgram ip = IntegerProgram::Create(n + 1);
  ip.integral[n] = false;  // t is continuous.
  ip.lp.objective.assign(n + 1, 0.0);
  ip.lp.objective[n] = 1.0;
  std::vector<double> sum_row(n + 1, 1.0);
  sum_row[n] = 0.0;
  ip.lp.AddEqual(sum_row, static_cast<double>(total));
  for (int j = 0; j < n; ++j) {
    std::vector<double> row(n + 1, 0.0);
    row[j] = rates[j];
    row[n] = -1.0;
    ip.lp.AddLessEqual(row, 0.0);
    if (caps[j] >= 0) {
      ip.lp.upper_bounds[j] = static_cast<double>(caps[j]);
    }
  }
  Result<IlpSolution> sol = SolveIlp(ip);
  if (!sol.ok()) return -1.0;
  return sol->objective;
}

TEST(MinMaxPropertyTest, MatchesGenericIlpOnRandomInstances) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(2, 5));
    std::vector<double> rates;
    std::vector<int64_t> caps;
    for (int j = 0; j < n; ++j) {
      rates.push_back(rng.Uniform(0.2, 5.0));
      caps.push_back(rng.Uniform() < 0.3 ? rng.UniformInt(1, 20) : -1);
    }
    const int64_t total = rng.UniformInt(1, 25);
    Result<BottleneckSolution> fast =
        SolveBottleneckAllocation(rates, caps, total);
    const double ilp = IlpBottleneck(rates, caps, total);
    if (!fast.ok()) {
      EXPECT_LT(ilp, 0) << "specialized infeasible but ILP solved, trial "
                        << trial;
      continue;
    }
    ASSERT_GE(ilp, 0) << "ILP infeasible but specialized solved, trial "
                      << trial;
    EXPECT_NEAR(fast->bottleneck, ilp, 1e-5 * std::max(1.0, ilp))
        << "trial " << trial;
    // The assignment itself must be consistent.
    int64_t sum = 0;
    for (int j = 0; j < n; ++j) {
      sum += fast->amounts[j];
      if (caps[j] >= 0) EXPECT_LE(fast->amounts[j], caps[j]);
      EXPECT_LE(rates[j] * fast->amounts[j], fast->bottleneck + 1e-9);
    }
    EXPECT_EQ(sum, total);
  }
}

// ---------- Pipeline division (Eq. 4) ----------

TEST(DivisionTest, AllFastGroupsBalance) {
  DivisionProblem problem;
  problem.num_pipelines = 2;
  problem.num_fast_groups = 4;
  problem.fast_rate = 0.5;
  problem.total_microbatches = 32;
  Result<DivisionResult> sol = SolveDivision(problem);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_TRUE(sol->exact);
  EXPECT_EQ(sol->pipelines[0].num_fast, 2);
  EXPECT_EQ(sol->pipelines[1].num_fast, 2);
  EXPECT_EQ(sol->pipelines[0].microbatches, 16);
  EXPECT_EQ(sol->pipelines[1].microbatches, 16);
}

TEST(DivisionTest, SlowGroupPipelineGetsLessData) {
  DivisionProblem problem;
  problem.num_pipelines = 2;
  problem.num_fast_groups = 3;
  problem.fast_rate = 1.0;
  problem.slow_rates = {4.0};  // One heavy group.
  problem.total_microbatches = 30;
  Result<DivisionResult> sol = SolveDivision(problem);
  ASSERT_TRUE(sol.ok()) << sol.status();
  // Total capacity is 3 + 0.25 = 3.25; the slow group joins one pipeline.
  int slow_pipe = sol->pipelines[0].slow_indices.empty() ? 1 : 0;
  const auto& slow = sol->pipelines[slow_pipe];
  const auto& fast = sol->pipelines[1 - slow_pipe];
  EXPECT_EQ(slow.slow_indices.size(), 1u);
  // Data split should track capacities.
  EXPECT_EQ(slow.microbatches + fast.microbatches, 30);
  EXPECT_LT(std::fabs(slow.microbatches / slow.capacity -
                      fast.microbatches / fast.capacity),
            1.0 / slow.capacity + 1.0 / fast.capacity);
}

TEST(DivisionTest, FeasibilityCallbackExcludesPlacements) {
  DivisionProblem problem;
  problem.num_pipelines = 2;
  problem.num_fast_groups = 2;
  problem.fast_rate = 1.0;
  problem.slow_rates = {2.0, 2.0};
  problem.total_microbatches = 16;
  // Require every pipeline to contain at least two groups.
  problem.pipeline_feasible = [](int num_fast,
                                 const std::vector<int>& slow) {
    return num_fast + static_cast<int>(slow.size()) >= 2;
  };
  Result<DivisionResult> sol = SolveDivision(problem);
  ASSERT_TRUE(sol.ok()) << sol.status();
  for (const auto& p : sol->pipelines) {
    EXPECT_GE(p.num_fast + static_cast<int>(p.slow_indices.size()), 2);
  }
}

TEST(DivisionTest, InfeasibleWhenTooFewGroups) {
  DivisionProblem problem;
  problem.num_pipelines = 3;
  problem.num_fast_groups = 2;
  problem.fast_rate = 1.0;
  problem.total_microbatches = 8;
  Result<DivisionResult> sol = SolveDivision(problem);
  ASSERT_FALSE(sol.ok());
  EXPECT_TRUE(sol.status().IsInfeasible());
}

TEST(DivisionTest, SinglePipelineTakesEverything) {
  DivisionProblem problem;
  problem.num_pipelines = 1;
  problem.num_fast_groups = 3;
  problem.fast_rate = 1.0;
  problem.slow_rates = {2.5};
  problem.total_microbatches = 10;
  Result<DivisionResult> sol = SolveDivision(problem);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->pipelines[0].num_fast, 3);
  EXPECT_EQ(sol->pipelines[0].slow_indices.size(), 1u);
  EXPECT_EQ(sol->pipelines[0].microbatches, 10);
}

TEST(DivisionTest, LocalSearchFallbackStaysFeasible) {
  // Enough slow groups to overflow a tiny node budget.
  DivisionProblem problem;
  problem.num_pipelines = 4;
  problem.num_fast_groups = 8;
  problem.fast_rate = 0.5;
  for (int i = 0; i < 12; ++i) {
    problem.slow_rates.push_back(1.0 + 0.3 * i);
  }
  problem.total_microbatches = 64;
  problem.max_nodes = 50;  // Force the fallback.
  Result<DivisionResult> sol = SolveDivision(problem);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_FALSE(sol->exact);
  int fast_total = 0;
  size_t slow_total = 0;
  int64_t micro_total = 0;
  for (const auto& p : sol->pipelines) {
    fast_total += p.num_fast;
    slow_total += p.slow_indices.size();
    micro_total += p.microbatches;
    EXPECT_GT(p.capacity, 0.0);
  }
  EXPECT_EQ(fast_total, 8);
  EXPECT_EQ(slow_total, 12u);
  EXPECT_EQ(micro_total, 64);
}

TEST(DivisionPropertyTest, ObjectiveMatchesReportedAssignment) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    DivisionProblem problem;
    problem.num_pipelines = static_cast<int>(rng.UniformInt(1, 3));
    problem.num_fast_groups = static_cast<int>(rng.UniformInt(
        problem.num_pipelines, problem.num_pipelines + 4));
    problem.fast_rate = rng.Uniform(0.2, 1.0);
    const int ms = static_cast<int>(rng.UniformInt(0, 4));
    for (int k = 0; k < ms; ++k) {
      problem.slow_rates.push_back(rng.Uniform(1.0, 6.0));
    }
    problem.total_microbatches = rng.UniformInt(
        problem.num_pipelines, 40);
    Result<DivisionResult> sol = SolveDivision(problem);
    ASSERT_TRUE(sol.ok()) << sol.status() << " trial " << trial;
    double max_load = 0.0;
    for (const auto& p : sol->pipelines) {
      max_load = std::max(max_load, p.microbatches / p.capacity);
    }
    EXPECT_NEAR(sol->objective, max_load, 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace solver
}  // namespace malleus
