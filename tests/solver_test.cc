// Tests for src/solver: simplex LP, branch-and-bound ILP, the exact
// bottleneck-allocation solvers, and the pipeline-division MINLP.
// Property tests cross-check the specialized solvers against the generic
// ILP on random instances.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "solver/cache_io.h"
#include "solver/division.h"
#include "solver/ilp.h"
#include "solver/lp.h"
#include "solver/minmax.h"
#include "solver/solve_cache.h"

namespace malleus {
namespace solver {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------- LP ----------

TEST(LpTest, SimpleTwoVariableOptimum) {
  // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2  -> x=2..? optimum x=2,y=2.
  LinearProgram lp = LinearProgram::Create(2);
  lp.objective = {-1.0, -2.0};
  lp.AddLessEqual({1.0, 1.0}, 4.0);
  lp.upper_bounds = {3.0, 2.0};
  Result<LpSolution> sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, -6.0, 1e-8);
  EXPECT_NEAR(sol->x[0], 2.0, 1e-8);
  EXPECT_NEAR(sol->x[1], 2.0, 1e-8);
}

TEST(LpTest, EqualityConstraint) {
  // min x + y  s.t. x + 2y = 3, x, y >= 0  -> y = 1.5, x = 0.
  LinearProgram lp = LinearProgram::Create(2);
  lp.objective = {1.0, 1.0};
  lp.AddEqual({1.0, 2.0}, 3.0);
  Result<LpSolution> sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 1.5, 1e-8);
}

TEST(LpTest, GreaterEqualConstraint) {
  // min x  s.t. x >= 5.
  LinearProgram lp = LinearProgram::Create(1);
  lp.objective = {1.0};
  lp.AddGreaterEqual({1.0}, 5.0);
  Result<LpSolution> sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 5.0, 1e-8);
}

TEST(LpTest, InfeasibleDetected) {
  LinearProgram lp = LinearProgram::Create(1);
  lp.objective = {1.0};
  lp.AddLessEqual({1.0}, 1.0);
  lp.AddGreaterEqual({1.0}, 2.0);
  Result<LpSolution> sol = SolveLp(lp);
  ASSERT_FALSE(sol.ok());
  EXPECT_TRUE(sol.status().IsInfeasible());
}

TEST(LpTest, UnboundedDetected) {
  LinearProgram lp = LinearProgram::Create(1);
  lp.objective = {-1.0};  // min -x with x unbounded above.
  Result<LpSolution> sol = SolveLp(lp);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kOutOfRange);
}

TEST(LpTest, NonZeroLowerBounds) {
  // min x + y  s.t. x >= 2, y >= 3 via bounds.
  LinearProgram lp = LinearProgram::Create(2);
  lp.objective = {1.0, 1.0};
  lp.lower_bounds = {2.0, 3.0};
  Result<LpSolution> sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 5.0, 1e-8);
}

TEST(LpTest, DegenerateRedundantConstraints) {
  LinearProgram lp = LinearProgram::Create(2);
  lp.objective = {1.0, 0.0};
  lp.AddEqual({1.0, 1.0}, 2.0);
  lp.AddEqual({2.0, 2.0}, 4.0);  // Redundant.
  Result<LpSolution> sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, 0.0, 1e-8);
}

// ---------- ILP ----------

TEST(IlpTest, RoundsAwayFractionalRelaxation) {
  // min -x - y  s.t. 2x + 3y <= 12, 3x + 2y <= 12, integers.
  // LP optimum (2.4, 2.4); ILP optimum is x=2,y=2 (or better along edges).
  IntegerProgram ip = IntegerProgram::Create(2);
  ip.lp.objective = {-1.0, -1.0};
  ip.lp.AddLessEqual({2.0, 3.0}, 12.0);
  ip.lp.AddLessEqual({3.0, 2.0}, 12.0);
  Result<IlpSolution> sol = SolveIlp(ip);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, -4.0, 1e-6);
}

TEST(IlpTest, Knapsack) {
  // max 10a + 13b + 7c with 3a + 4b + 2c <= 6, binary -> a=0? Enumerate:
  // best is a + c = 17? a(3)+c(2)=5 -> 17; b(4)+c(2)=6 -> 20.
  IntegerProgram ip = IntegerProgram::Create(3);
  ip.lp.objective = {-10.0, -13.0, -7.0};
  ip.lp.AddLessEqual({3.0, 4.0, 2.0}, 6.0);
  ip.lp.upper_bounds = {1.0, 1.0, 1.0};
  Result<IlpSolution> sol = SolveIlp(ip);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->objective, -20.0, 1e-6);
  EXPECT_NEAR(sol->x[1], 1.0, 1e-6);
  EXPECT_NEAR(sol->x[2], 1.0, 1e-6);
}

TEST(IlpTest, InfeasibleIntegerBox) {
  // 0.4 <= x <= 0.6 has no integer point.
  IntegerProgram ip = IntegerProgram::Create(1);
  ip.lp.objective = {1.0};
  ip.lp.lower_bounds = {0.4};
  ip.lp.upper_bounds = {0.6};
  Result<IlpSolution> sol = SolveIlp(ip);
  ASSERT_FALSE(sol.ok());
  EXPECT_TRUE(sol.status().IsInfeasible());
}

TEST(IlpTest, MixedIntegerKeepsContinuousVars) {
  // min x + y, x integer >= 1.5 -> 2; y continuous >= 0.5.
  IntegerProgram ip = IntegerProgram::Create(2);
  ip.integral = {true, false};
  ip.lp.objective = {1.0, 1.0};
  ip.lp.lower_bounds = {1.5, 0.5};
  Result<IlpSolution> sol = SolveIlp(ip);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_NEAR(sol->x[0], 2.0, 1e-6);
  EXPECT_NEAR(sol->x[1], 0.5, 1e-6);
}

// ---------- Bottleneck allocation (Eq. 2 / Eq. 3) ----------

TEST(MinMaxTest, EvenRatesSplitEvenly) {
  Result<BottleneckSolution> sol =
      SolveBottleneckAllocation({1.0, 1.0, 1.0, 1.0}, 32);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_DOUBLE_EQ(sol->bottleneck, 8.0);
  for (int64_t a : sol->amounts) EXPECT_EQ(a, 8);
}

TEST(MinMaxTest, SlowEntityGetsLess) {
  // Rates 1 and 3: 12 units -> 9 and 3 balances products at 9.
  Result<BottleneckSolution> sol = SolveBottleneckAllocation({1.0, 3.0}, 12);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->amounts[0], 9);
  EXPECT_EQ(sol->amounts[1], 3);
  EXPECT_DOUBLE_EQ(sol->bottleneck, 9.0);
}

TEST(MinMaxTest, CapacitiesRespected) {
  Result<BottleneckSolution> sol =
      SolveBottleneckAllocation({1.0, 1.0}, {3, -1}, 10);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_LE(sol->amounts[0], 3);
  EXPECT_EQ(sol->amounts[0] + sol->amounts[1], 10);
  EXPECT_DOUBLE_EQ(sol->bottleneck, 7.0);
}

TEST(MinMaxTest, InfiniteRateGetsZero) {
  Result<BottleneckSolution> sol =
      SolveBottleneckAllocation({1.0, kInf}, 5);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->amounts[0], 5);
  EXPECT_EQ(sol->amounts[1], 0);
}

TEST(MinMaxTest, InfeasibleWhenCapsTooSmall) {
  Result<BottleneckSolution> sol =
      SolveBottleneckAllocation({1.0, 1.0}, {2, 2}, 5);
  ASSERT_FALSE(sol.ok());
  EXPECT_TRUE(sol.status().IsInfeasible());
}

TEST(MinMaxTest, ZeroTotalIsAllZero) {
  Result<BottleneckSolution> sol = SolveBottleneckAllocation({2.0, 5.0}, 0);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_DOUBLE_EQ(sol->bottleneck, 0.0);
}

// Cross-check the specialized solver against the generic ILP, which solves
//   min t  s.t.  rate_j * n_j <= t, sum n_j = total, 0 <= n_j <= cap_j.
double IlpBottleneck(const std::vector<double>& rates,
                     const std::vector<int64_t>& caps, int64_t total) {
  const int n = static_cast<int>(rates.size());
  IntegerProgram ip = IntegerProgram::Create(n + 1);
  ip.integral[n] = false;  // t is continuous.
  ip.lp.objective.assign(n + 1, 0.0);
  ip.lp.objective[n] = 1.0;
  std::vector<double> sum_row(n + 1, 1.0);
  sum_row[n] = 0.0;
  ip.lp.AddEqual(sum_row, static_cast<double>(total));
  for (int j = 0; j < n; ++j) {
    std::vector<double> row(n + 1, 0.0);
    row[j] = rates[j];
    row[n] = -1.0;
    ip.lp.AddLessEqual(row, 0.0);
    if (caps[j] >= 0) {
      ip.lp.upper_bounds[j] = static_cast<double>(caps[j]);
    }
  }
  Result<IlpSolution> sol = SolveIlp(ip);
  if (!sol.ok()) return -1.0;
  return sol->objective;
}

TEST(MinMaxPropertyTest, MatchesGenericIlpOnRandomInstances) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(2, 5));
    std::vector<double> rates;
    std::vector<int64_t> caps;
    for (int j = 0; j < n; ++j) {
      rates.push_back(rng.Uniform(0.2, 5.0));
      caps.push_back(rng.Uniform() < 0.3 ? rng.UniformInt(1, 20) : -1);
    }
    const int64_t total = rng.UniformInt(1, 25);
    Result<BottleneckSolution> fast =
        SolveBottleneckAllocation(rates, caps, total);
    const double ilp = IlpBottleneck(rates, caps, total);
    if (!fast.ok()) {
      EXPECT_LT(ilp, 0) << "specialized infeasible but ILP solved, trial "
                        << trial;
      continue;
    }
    ASSERT_GE(ilp, 0) << "ILP infeasible but specialized solved, trial "
                      << trial;
    EXPECT_NEAR(fast->bottleneck, ilp, 1e-5 * std::max(1.0, ilp))
        << "trial " << trial;
    // The assignment itself must be consistent.
    int64_t sum = 0;
    for (int j = 0; j < n; ++j) {
      sum += fast->amounts[j];
      if (caps[j] >= 0) {
        EXPECT_LE(fast->amounts[j], caps[j]);
      }
      EXPECT_LE(rates[j] * fast->amounts[j], fast->bottleneck + 1e-9);
    }
    EXPECT_EQ(sum, total);
  }
}

// ---------- Pipeline division (Eq. 4) ----------

TEST(DivisionTest, AllFastGroupsBalance) {
  DivisionProblem problem;
  problem.num_pipelines = 2;
  problem.num_fast_groups = 4;
  problem.fast_rate = 0.5;
  problem.total_microbatches = 32;
  Result<DivisionResult> sol = SolveDivision(problem);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_TRUE(sol->exact);
  EXPECT_EQ(sol->pipelines[0].num_fast, 2);
  EXPECT_EQ(sol->pipelines[1].num_fast, 2);
  EXPECT_EQ(sol->pipelines[0].microbatches, 16);
  EXPECT_EQ(sol->pipelines[1].microbatches, 16);
}

TEST(DivisionTest, SlowGroupPipelineGetsLessData) {
  DivisionProblem problem;
  problem.num_pipelines = 2;
  problem.num_fast_groups = 3;
  problem.fast_rate = 1.0;
  problem.slow_rates = {4.0};  // One heavy group.
  problem.total_microbatches = 30;
  Result<DivisionResult> sol = SolveDivision(problem);
  ASSERT_TRUE(sol.ok()) << sol.status();
  // Total capacity is 3 + 0.25 = 3.25; the slow group joins one pipeline.
  int slow_pipe = sol->pipelines[0].slow_indices.empty() ? 1 : 0;
  const auto& slow = sol->pipelines[slow_pipe];
  const auto& fast = sol->pipelines[1 - slow_pipe];
  EXPECT_EQ(slow.slow_indices.size(), 1u);
  // Data split should track capacities.
  EXPECT_EQ(slow.microbatches + fast.microbatches, 30);
  EXPECT_LT(std::fabs(slow.microbatches / slow.capacity -
                      fast.microbatches / fast.capacity),
            1.0 / slow.capacity + 1.0 / fast.capacity);
}

TEST(DivisionTest, FeasibilityCallbackExcludesPlacements) {
  DivisionProblem problem;
  problem.num_pipelines = 2;
  problem.num_fast_groups = 2;
  problem.fast_rate = 1.0;
  problem.slow_rates = {2.0, 2.0};
  problem.total_microbatches = 16;
  // Require every pipeline to contain at least two groups.
  problem.pipeline_feasible = [](int num_fast,
                                 const std::vector<int>& slow) {
    return num_fast + static_cast<int>(slow.size()) >= 2;
  };
  Result<DivisionResult> sol = SolveDivision(problem);
  ASSERT_TRUE(sol.ok()) << sol.status();
  for (const auto& p : sol->pipelines) {
    EXPECT_GE(p.num_fast + static_cast<int>(p.slow_indices.size()), 2);
  }
}

TEST(DivisionTest, InfeasibleWhenTooFewGroups) {
  DivisionProblem problem;
  problem.num_pipelines = 3;
  problem.num_fast_groups = 2;
  problem.fast_rate = 1.0;
  problem.total_microbatches = 8;
  Result<DivisionResult> sol = SolveDivision(problem);
  ASSERT_FALSE(sol.ok());
  EXPECT_TRUE(sol.status().IsInfeasible());
}

TEST(DivisionTest, SinglePipelineTakesEverything) {
  DivisionProblem problem;
  problem.num_pipelines = 1;
  problem.num_fast_groups = 3;
  problem.fast_rate = 1.0;
  problem.slow_rates = {2.5};
  problem.total_microbatches = 10;
  Result<DivisionResult> sol = SolveDivision(problem);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->pipelines[0].num_fast, 3);
  EXPECT_EQ(sol->pipelines[0].slow_indices.size(), 1u);
  EXPECT_EQ(sol->pipelines[0].microbatches, 10);
}

TEST(DivisionTest, LocalSearchFallbackStaysFeasible) {
  // Enough slow groups to overflow a tiny node budget.
  DivisionProblem problem;
  problem.num_pipelines = 4;
  problem.num_fast_groups = 8;
  problem.fast_rate = 0.5;
  for (int i = 0; i < 12; ++i) {
    problem.slow_rates.push_back(1.0 + 0.3 * i);
  }
  problem.total_microbatches = 64;
  problem.max_nodes = 50;  // Force the fallback.
  Result<DivisionResult> sol = SolveDivision(problem);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_FALSE(sol->exact);
  int fast_total = 0;
  size_t slow_total = 0;
  int64_t micro_total = 0;
  for (const auto& p : sol->pipelines) {
    fast_total += p.num_fast;
    slow_total += p.slow_indices.size();
    micro_total += p.microbatches;
    EXPECT_GT(p.capacity, 0.0);
  }
  EXPECT_EQ(fast_total, 8);
  EXPECT_EQ(slow_total, 12u);
  EXPECT_EQ(micro_total, 64);
}

TEST(DivisionPropertyTest, ObjectiveMatchesReportedAssignment) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    DivisionProblem problem;
    problem.num_pipelines = static_cast<int>(rng.UniformInt(1, 3));
    problem.num_fast_groups = static_cast<int>(rng.UniformInt(
        problem.num_pipelines, problem.num_pipelines + 4));
    problem.fast_rate = rng.Uniform(0.2, 1.0);
    const int ms = static_cast<int>(rng.UniformInt(0, 4));
    for (int k = 0; k < ms; ++k) {
      problem.slow_rates.push_back(rng.Uniform(1.0, 6.0));
    }
    problem.total_microbatches = rng.UniformInt(
        problem.num_pipelines, 40);
    Result<DivisionResult> sol = SolveDivision(problem);
    ASSERT_TRUE(sol.ok()) << sol.status() << " trial " << trial;
    double max_load = 0.0;
    for (const auto& p : sol->pipelines) {
      max_load = std::max(max_load, p.microbatches / p.capacity);
    }
    EXPECT_NEAR(sol->objective, max_load, 1e-9) << "trial " << trial;
  }
}

// ---------- Branch-and-bound node accounting ----------

// A knapsack that forces branching: LP relaxation is fractional, so the
// search must expand children before finding the integral optimum.
IntegerProgram BranchyKnapsack() {
  // max 5a + 4b + 3c  s.t. 2a + 3b + c <= 5, vars in {0,1}.
  IntegerProgram ip = IntegerProgram::Create(3);
  ip.lp.objective = {-5.0, -4.0, -3.0};
  ip.lp.AddLessEqual({2.0, 3.0, 1.0}, 5.0);
  ip.lp.upper_bounds = {1.0, 1.0, 1.0};
  return ip;
}

TEST(IlpTest, NodeLimitReturnsResourceExhausted) {
  IlpOptions opts;
  opts.max_nodes = 1;
  Result<IlpSolution> sol = SolveIlp(BranchyKnapsack(), opts);
  ASSERT_FALSE(sol.ok());
  EXPECT_TRUE(sol.status().IsResourceExhausted()) << sol.status();
}

TEST(IlpTest, NodeCountIsExactAndDeterministic) {
  Result<IlpSolution> first = SolveIlp(BranchyKnapsack());
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_NEAR(first->objective, -9.0, 1e-8);  // a=b=1, c=0.
  EXPECT_GT(first->nodes_explored, 1);  // Relaxation alone is fractional.

  // Re-solving explores the identical tree (best-first order is total:
  // bound, then node creation id), so the node count is reproducible.
  Result<IlpSolution> second = SolveIlp(BranchyKnapsack());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->nodes_explored, second->nodes_explored);

  // A budget exactly at the observed count succeeds; one less fails —
  // i.e. nodes are counted exactly, not approximately.
  IlpOptions at;
  at.max_nodes = first->nodes_explored;
  EXPECT_TRUE(SolveIlp(BranchyKnapsack(), at).ok());
  IlpOptions under;
  under.max_nodes = first->nodes_explored - 1;
  Result<IlpSolution> capped = SolveIlp(BranchyKnapsack(), under);
  ASSERT_FALSE(capped.ok());
  EXPECT_TRUE(capped.status().IsResourceExhausted());
}

// ---------- CacheKey / SolveCache ----------

TEST(CacheKeyTest, EqualInputsEncodeEqually) {
  CacheKey a, b;
  a.Tag('O').Doubles({1.0, 2.0}).Ints({4, 8}).Int(3).Bool(true);
  b.Tag('O').Doubles({1.0, 2.0}).Ints({4, 8}).Int(3).Bool(true);
  EXPECT_EQ(a.str(), b.str());
}

TEST(CacheKeyTest, VectorBoundariesDoNotCollide) {
  // ([1,2],[3]) vs ([1],[2,3]): same flattened values, different shape.
  CacheKey a, b;
  a.Doubles({1.0, 2.0}).Doubles({3.0});
  b.Doubles({1.0}).Doubles({2.0, 3.0});
  EXPECT_NE(a.str(), b.str());
}

TEST(CacheKeyTest, FieldTypesDoNotCollide) {
  CacheKey as_int, as_bool, as_double;
  as_int.Int(1);
  as_bool.Bool(true);
  as_double.Double(1.0);
  EXPECT_NE(as_int.str(), as_bool.str());
  EXPECT_NE(as_int.str(), as_double.str());
  EXPECT_NE(as_bool.str(), as_double.str());

  CacheKey tag_a, tag_b;
  tag_a.Tag('O').Int(7);
  tag_b.Tag('L').Int(7);
  EXPECT_NE(tag_a.str(), tag_b.str());
}

TEST(CacheKeyTest, DoubleKeysUseBitPatterns) {
  CacheKey pos, neg;
  pos.Double(0.0);
  neg.Double(-0.0);
  EXPECT_NE(pos.str(), neg.str());  // Conservative: distinct representations.
}

TEST(SolveCacheTest, TypedRoundTripAndStats) {
  SolveCache cache;
  const std::string key = CacheKey().Tag('T').Int(42).str();
  EXPECT_EQ(cache.LookupAs<int>(key), nullptr);
  cache.InsertAs<int>(key, 7);
  std::shared_ptr<const int> hit = cache.LookupAs<int>(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 7);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.LookupAs<int>(key), nullptr);
}

TEST(SolveCacheTest, FirstInsertWinsOnDuplicateKey) {
  SolveCache cache;
  const std::string key = CacheKey().Tag('T').Int(1).str();
  cache.InsertAs<int>(key, 10);
  cache.InsertAs<int>(key, 20);  // Racing duplicate: must not replace.
  std::shared_ptr<const int> hit = cache.LookupAs<int>(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 10);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SolveCacheTest, CapacityBoundDropsCache) {
  SolveCache cache(/*max_entries=*/2);
  cache.InsertAs<int>(CacheKey().Tag('T').Int(1).str(), 1);
  cache.InsertAs<int>(CacheKey().Tag('T').Int(2).str(), 2);
  EXPECT_EQ(cache.size(), 2u);
  cache.InsertAs<int>(CacheKey().Tag('T').Int(3).str(), 3);
  // The overflowing insert dropped the old entries and kept the new one.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.LookupAs<int>(CacheKey().Tag('T').Int(3).str()), nullptr);
}

// ---------- cache serialization ----------

// A toy codec for tag 'T' with int values, enough to exercise the
// serialization machinery without dragging in the planner's types.
CacheCodec IntCodec() {
  CacheCodec codec;
  codec.Register(
      'T',
      [](const void* value, std::string* out) {
        wire::PutU64(out,
                     static_cast<uint64_t>(*static_cast<const int*>(value)));
      },
      [](const char* data, size_t size) -> std::shared_ptr<const void> {
        wire::Reader reader(data, size);
        uint64_t v = 0;
        if (!reader.U64(&v) || !reader.AtEnd()) return nullptr;
        return std::make_shared<const int>(static_cast<int>(v));
      });
  return codec;
}

TEST(SolveCacheSerializationTest, RoundTripRestoresEntries) {
  const CacheCodec codec = IntCodec();
  SolveCache cache;
  cache.InsertAs<int>(CacheKey().Tag('T').Int(1).str(), 10);
  cache.InsertAs<int>(CacheKey().Tag('T').Int(2).str(), 20);
  const std::string blob = cache.Serialize(codec);

  SolveCache restored;
  MALLEUS_CHECK_OK(restored.Deserialize(blob, codec));
  EXPECT_EQ(restored.size(), 2u);
  std::shared_ptr<const int> hit =
      restored.LookupAs<int>(CacheKey().Tag('T').Int(2).str());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 20);
}

TEST(SolveCacheSerializationTest, SerializeIsInsertionOrderIndependent) {
  const CacheCodec codec = IntCodec();
  SolveCache forward, backward;
  for (int i = 0; i < 8; ++i) {
    forward.InsertAs<int>(CacheKey().Tag('T').Int(i).str(), i);
    backward.InsertAs<int>(CacheKey().Tag('T').Int(7 - i).str(), 7 - i);
  }
  EXPECT_EQ(forward.Serialize(codec), backward.Serialize(codec));
}

TEST(SolveCacheSerializationTest, UnknownTagsAreSkippedNotFatal) {
  const CacheCodec codec = IntCodec();
  SolveCache cache;
  cache.InsertAs<int>(CacheKey().Tag('T').Int(1).str(), 10);
  cache.InsertAs<double>(CacheKey().Tag('Z').Int(1).str(), 3.5);
  // 'Z' has no encoder: only the 'T' entry is persisted.
  const std::string blob = cache.Serialize(codec);
  SolveCache restored;
  MALLEUS_CHECK_OK(restored.Deserialize(blob, codec));
  EXPECT_EQ(restored.size(), 1u);
}

TEST(SolveCacheSerializationTest, TruncatedBlobRejectedAndCacheUntouched) {
  const CacheCodec codec = IntCodec();
  SolveCache cache;
  cache.InsertAs<int>(CacheKey().Tag('T').Int(1).str(), 10);
  cache.InsertAs<int>(CacheKey().Tag('T').Int(2).str(), 20);
  const std::string blob = cache.Serialize(codec);

  for (size_t cut : {blob.size() - 1, blob.size() / 2, size_t{1}}) {
    SolveCache restored;
    const Status status =
        restored.Deserialize(blob.substr(0, cut), codec);
    EXPECT_FALSE(status.ok()) << "cut at " << cut;
    // All-or-nothing: a bad blob must not leave partial entries behind.
    EXPECT_EQ(restored.size(), 0u) << "cut at " << cut;
  }
}

TEST(SolveCacheSerializationTest, CorruptLengthPrefixRejected) {
  const CacheCodec codec = IntCodec();
  SolveCache cache;
  cache.InsertAs<int>(CacheKey().Tag('T').Int(1).str(), 10);
  std::string blob = cache.Serialize(codec);
  // The blob ends in the entry's value string: u32 length + 8 payload
  // bytes. Flip the length's most significant byte so it points past the
  // end of the blob; the bounds-checked reader must reject it.
  blob[blob.size() - 9] = static_cast<char>(blob[blob.size() - 9] ^ 0x7f);
  SolveCache restored;
  const Status status = restored.Deserialize(blob, codec);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(restored.size(), 0u);
}

TEST(CacheIoTest, FileRoundTripPreservesSections) {
  std::vector<CacheFileSection> sections(2);
  sections[0].fingerprint = 0x1111;
  sections[0].label = "alpha";
  sections[0].blob = "payload-a";
  sections[1].fingerprint = 0x2222;
  sections[1].label = "beta";
  sections[1].blob = std::string("\x00\x01\x02", 3);  // Binary-safe.
  const std::string bytes = EncodeCacheFile(sections);

  Result<std::vector<CacheFileSection>> decoded = DecodeCacheFile(bytes);
  MALLEUS_CHECK_OK(decoded.status());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].fingerprint, 0x1111u);
  EXPECT_EQ((*decoded)[0].label, "alpha");
  EXPECT_EQ((*decoded)[1].blob, sections[1].blob);
}

TEST(CacheIoTest, TruncationAndBitFlipsRejected) {
  std::vector<CacheFileSection> sections(1);
  sections[0].fingerprint = 0xabcd;
  sections[0].label = "x";
  sections[0].blob = "0123456789";
  const std::string bytes = EncodeCacheFile(sections);

  // Any truncation point fails: either a bounds check or the hash.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Result<std::vector<CacheFileSection>> r =
        DecodeCacheFile(bytes.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
  // Any single bit flip past the version field trips the footer hash.
  for (size_t i = 12; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    Result<std::vector<CacheFileSection>> r = DecodeCacheFile(flipped);
    EXPECT_FALSE(r.ok()) << "flip at " << i;
  }
}

TEST(CacheIoTest, VersionBumpRejectedWithFailedPrecondition) {
  std::vector<CacheFileSection> sections(1);
  sections[0].fingerprint = 1;
  sections[0].label = "v";
  sections[0].blob = "b";
  std::string bytes = EncodeCacheFile(sections);
  // The u32 version sits right after the 8-byte magic (little-endian).
  ASSERT_EQ(static_cast<unsigned char>(bytes[8]), kCacheFileVersion);
  bytes[8] = static_cast<char>(kCacheFileVersion + 1);
  Result<std::vector<CacheFileSection>> r = DecodeCacheFile(bytes);
  ASSERT_FALSE(r.ok());
  // Version mismatch is reported as such, checked BEFORE the hash, so a
  // future format upgrade fails with a version message, not "corrupt".
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CacheIoTest, MissingFileIsNotFound) {
  Result<std::vector<CacheFileSection>> r =
      ReadCacheFile("/nonexistent/malleus-cache-io-test");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace solver
}  // namespace malleus
