# End-to-end daemon contract, run via `cmake -P` (see tests/CMakeLists.txt):
#   - malleus_served --stdio serves a scripted session: register, plan,
#     a warm replan, status, graceful shutdown — exit 0;
#   - a malformed line mid-stream gets a typed error and does NOT kill the
#     daemon (the requests after it are still answered);
#   - the cache written by --cache-save warm-loads on a restarted daemon
#     (register reports "warm":true) and malleus_client's --port usage
#     errors exit 2.
# Expects -DMALLEUS_SERVED, -DMALLEUS_CLIENT, -DWORK_DIR.

set(cache "${WORK_DIR}/serve_smoke.cache")
file(REMOVE ${cache})

set(scenario "model = tiny\\nnodes = 1\\nbatch = 8\\nphase = s1")
set(session "${WORK_DIR}/serve_smoke_session.jsonl")
file(WRITE ${session}
"{\"v\":1,\"id\":1,\"method\":\"register\",\"params\":{\"name\":\"c1\",\"scenario\":\"${scenario}\"}}
{\"v\":1,\"id\":2,\"method\":\"plan\",\"params\":{\"cluster\":\"c1\",\"situation\":\"s1\"}}
this line is not even json
{\"v\":1,\"id\":3,\"method\":\"replan\",\"params\":{\"cluster\":\"c1\",\"situation\":\"s2\"}}
{\"v\":1,\"id\":4,\"method\":\"status\"}
{\"v\":1,\"id\":5,\"method\":\"shutdown\"}
")

execute_process(COMMAND ${MALLEUS_SERVED} --stdio --cache-save=${cache}
                INPUT_FILE ${session}
                RESULT_VARIABLE result
                OUTPUT_VARIABLE stdout
                ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "daemon exited ${result}\nstdout:\n${stdout}\n"
          "stderr:\n${stderr}")
endif()

function(expect_response needle)
  if(NOT stdout MATCHES "${needle}")
    message(FATAL_ERROR "daemon output lacks '${needle}':\n${stdout}")
  endif()
endfunction()

# Every request answered, in order; the junk line got a typed error with
# id 0 and did not take the daemon down (ids 3-5 still answered after it).
expect_response("\"id\":1,\"ok\":true")
expect_response("\"id\":2,\"ok\":true")
expect_response("\"id\":0,\"ok\":false.*INVALID_ARGUMENT")
expect_response("\"id\":3,\"ok\":true")
expect_response("\"id\":4,\"ok\":true")
expect_response("\"parse_errors\":1")
expect_response("\"id\":5,\"ok\":true.*draining")

if(NOT EXISTS ${cache})
  message(FATAL_ERROR "--cache-save did not write ${cache}")
endif()

# Restarted daemon warm-loads the persisted cache.
file(WRITE ${session}
"{\"v\":1,\"id\":1,\"method\":\"register\",\"params\":{\"name\":\"c1\",\"scenario\":\"${scenario}\"}}
{\"v\":1,\"id\":2,\"method\":\"shutdown\"}
")
execute_process(COMMAND ${MALLEUS_SERVED} --stdio --cache-load=${cache}
                INPUT_FILE ${session}
                RESULT_VARIABLE result
                OUTPUT_VARIABLE stdout
                ERROR_VARIABLE stderr)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "warm daemon exited ${result}\nstderr:\n${stderr}")
endif()
expect_response("\"warm\":true")

# Usage errors are distinct from request failures.
execute_process(COMMAND ${MALLEUS_CLIENT} status
                RESULT_VARIABLE result OUTPUT_QUIET ERROR_QUIET)
if(NOT result EQUAL 2)
  message(FATAL_ERROR "client without --port should exit 2, got ${result}")
endif()
execute_process(COMMAND ${MALLEUS_SERVED} --no-such-flag
                RESULT_VARIABLE result OUTPUT_QUIET ERROR_QUIET)
if(NOT result EQUAL 2)
  message(FATAL_ERROR "daemon bad flag should exit 2, got ${result}")
endif()

file(REMOVE ${cache} ${session})
