// Tests for malleus::testkit: generator determinism and round-trips, the
// oracle engine on known-clean and known-broken inputs, the injected
// violation -> minimize -> repro -> replay path, and golden snapshot
// stability.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "scenario/scenario.h"
#include "testkit/generator.h"
#include "testkit/golden.h"
#include "testkit/oracle.h"
#include "testkit/repro.h"

namespace malleus {
namespace testkit {
namespace {

// A small, healthy, plannable scenario shared by the oracle tests. One
// level-1 straggler makes the metamorphic oracles non-trivial.
scenario::ScenarioSpec SmallSpec() {
  scenario::ScenarioSpec spec;
  spec.model = "tiny";
  spec.nodes = 2;
  spec.gpus_per_node = 2;
  spec.batch = 8;
  spec.steps = 1;
  scenario::StragglerEntry entry;
  entry.gpu = 1;
  entry.level = 1;
  spec.stragglers.push_back(entry);
  return spec;
}

TEST(GeneratorTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(scenario::SerializeScenario(GenerateScenario(&a)),
              scenario::SerializeScenario(GenerateScenario(&b)))
        << "draw " << i;
  }
}

TEST(GeneratorTest, MixSeedSpreadsRuns) {
  EXPECT_NE(MixSeed(1, 0), MixSeed(1, 1));
  EXPECT_NE(MixSeed(1, 0), MixSeed(2, 0));
  EXPECT_EQ(MixSeed(7, 13), MixSeed(7, 13));
}

TEST(GeneratorTest, EveryDrawSerializesAndRoundTrips) {
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    const scenario::ScenarioSpec spec = GenerateScenario(&rng);
    EXPECT_GE(spec.nodes, 1);
    EXPECT_GE(spec.gpus_per_node, 1);
    EXPECT_GE(spec.batch, 1);
    const std::string text = scenario::SerializeScenario(spec);
    Result<scenario::ScenarioSpec> reparsed =
        scenario::ParseScenarioString(text);
    ASSERT_TRUE(reparsed.ok()) << "draw " << i << ": " << reparsed.status()
                               << "\n" << text;
    EXPECT_EQ(scenario::SerializeScenario(*reparsed), text) << "draw " << i;
  }
}

TEST(OracleTest, CleanScenarioRunsEveryOracleWithoutViolations) {
  const OracleOutcome outcome = RunOracles(SmallSpec());
  EXPECT_TRUE(outcome.resolved);
  EXPECT_TRUE(outcome.planned);
  EXPECT_TRUE(outcome.ok()) << outcome.violations.front().oracle << ": "
                            << outcome.violations.front().message;
  const std::vector<std::string> expected = {
      "differential.planner-threads",
      "differential.solve-cache",
      "differential.net-model",
      "differential.validate-lint",
      "metamorphic.straggler-monotone-plan",
      "metamorphic.straggler-monotone-replan",
      "metamorphic.standby-monotone",
      "metamorphic.bandwidth-scaling",
      "sim.invariants",
      "differential.sim-replay",
      "sim.event-graph",
      "net.flow-conservation",
  };
  for (const std::string& oracle : expected) {
    bool ran = false;
    for (const std::string& name : outcome.oracles_run) {
      if (name == oracle) ran = true;
    }
    EXPECT_TRUE(ran) << oracle << " did not run";
  }
}

TEST(OracleTest, UnresolvableScenarioIsNotAViolation) {
  scenario::ScenarioSpec spec = SmallSpec();
  spec.model = "no-such-model";
  const OracleOutcome outcome = RunOracles(spec);
  EXPECT_FALSE(outcome.resolved);
  EXPECT_FALSE(outcome.planned);
  EXPECT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome.error.empty());
}

TEST(OracleTest, UnplannableScenarioChecksFailureDeterminismOnly) {
  // 110B on a single GPU cannot fit; the planner oracles must still run
  // (the failure has to be deterministic) without reporting violations.
  scenario::ScenarioSpec spec;
  spec.model = "110b";
  spec.nodes = 1;
  spec.gpus_per_node = 1;
  spec.batch = 1;
  const OracleOutcome outcome = RunOracles(spec);
  EXPECT_TRUE(outcome.resolved);
  EXPECT_FALSE(outcome.planned);
  EXPECT_TRUE(outcome.ok()) << outcome.violations.front().message;
  EXPECT_EQ(outcome.oracles_run.size(), 2u);  // threads + solve-cache.
  EXPECT_FALSE(outcome.error.empty());
}

TEST(OracleTest, InjectedPerturbationFiresTheMonotoneOracle) {
  OracleOptions options;
  options.inject_perturb_estimate = true;
  const OracleOutcome outcome = RunOracles(SmallSpec(), options);
  bool fired = false;
  for (const Violation& v : outcome.violations) {
    if (v.oracle == "metamorphic.straggler-monotone-plan") fired = true;
  }
  EXPECT_TRUE(fired)
      << "the injection hook must trip metamorphic.straggler-monotone-plan";
}

TEST(ReproTest, MinimizesInjectedViolationAndReplaysToSameFailure) {
  OracleOptions options;
  options.inject_perturb_estimate = true;
  const std::string oracle = "metamorphic.straggler-monotone-plan";

  // Start from a deliberately oversized scenario.
  scenario::ScenarioSpec spec = SmallSpec();
  spec.model = "32b";
  spec.nodes = 4;
  spec.gpus_per_node = 8;
  spec.batch = 64;
  spec.phases = {"normal", "s3"};
  ASSERT_TRUE(StillViolates(spec, oracle, options));

  int evals = 0;
  const scenario::ScenarioSpec minimized =
      MinimizeScenario(spec, oracle, options, /*max_evals=*/200, &evals);
  EXPECT_GT(evals, 0);
  EXPECT_LE(evals, 200);
  // The injected bug survives on the trivial shape, so the minimizer must
  // reach it.
  EXPECT_EQ(minimized.model, "tiny");
  EXPECT_EQ(minimized.nodes, 1);
  EXPECT_EQ(minimized.gpus_per_node, 1);
  EXPECT_EQ(minimized.batch, 1);
  EXPECT_TRUE(minimized.phases.empty());

  // The rendered repro parses back to a spec that still fails identically.
  Violation violation{oracle, "injected"};
  const std::string repro =
      RenderRepro(minimized, violation, /*base_seed=*/7, /*run_index=*/3,
                  options);
  EXPECT_NE(repro.find("# oracle: " + oracle), std::string::npos);
  EXPECT_NE(repro.find("--seed=7 run 3"), std::string::npos);
  Result<scenario::ScenarioSpec> replayed =
      scenario::ParseScenarioString(repro);
  ASSERT_TRUE(replayed.ok()) << replayed.status() << "\n" << repro;
  EXPECT_TRUE(StillViolates(*replayed, oracle, options));
  // And without the injection, the same scenario is clean.
  EXPECT_FALSE(StillViolates(*replayed, oracle, OracleOptions()));
}

TEST(ReproTest, MinimizerIsANoOpWithoutAViolation) {
  const scenario::ScenarioSpec spec = SmallSpec();
  int evals = 0;
  const scenario::ScenarioSpec minimized =
      MinimizeScenario(spec, "sim.invariants", OracleOptions(),
                       /*max_evals=*/30, &evals);
  EXPECT_EQ(scenario::SerializeScenario(minimized),
            scenario::SerializeScenario(spec));
  EXPECT_LE(evals, 30);
}

TEST(GoldenTest, SnapshotIsDeterministicAndSelfDescribing) {
  const scenario::ScenarioSpec spec = SmallSpec();
  Result<std::string> first = RenderGoldenSnapshot(spec);
  Result<std::string> second = RenderGoldenSnapshot(spec);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(*first, *second);
  EXPECT_NE(first->find("== scenario =="), std::string::npos);
  EXPECT_NE(first->find("== situation overlay =="), std::string::npos);
  EXPECT_NE(first->find("plan.signature = "), std::string::npos);
  EXPECT_NE(first->find("gradsync.analytic_seconds = "), std::string::npos);
  EXPECT_NE(first->find("gradsync.flow_seconds = "), std::string::npos);
}

TEST(GoldenTest, TracePhasesDeduplicateAndFailuresRender) {
  scenario::ScenarioSpec spec;
  spec.model = "tiny";
  spec.nodes = 1;
  spec.gpus_per_node = 2;
  spec.batch = 4;
  spec.phases = {"s1", "normal", "s1"};
  Result<std::string> snapshot = RenderGoldenSnapshot(spec);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  // S1 appears once despite two phases; Normal keeps its slot.
  size_t first_s1 = snapshot->find("== situation S1 ==");
  ASSERT_NE(first_s1, std::string::npos);
  EXPECT_EQ(snapshot->find("== situation S1 ==", first_s1 + 1),
            std::string::npos);
  EXPECT_NE(snapshot->find("== situation Normal =="), std::string::npos);

  // An unresolvable spec fails; an unplannable one renders the failure.
  spec.phases = {"bogus"};
  EXPECT_FALSE(RenderGoldenSnapshot(spec).ok());
  spec.phases.clear();
  spec.model = "110b";
  spec.nodes = 1;
  spec.gpus_per_node = 1;
  Result<std::string> failed = RenderGoldenSnapshot(spec);
  ASSERT_TRUE(failed.ok()) << failed.status();
  EXPECT_NE(failed->find("plan failed: "), std::string::npos);
}

}  // namespace
}  // namespace testkit
}  // namespace malleus
