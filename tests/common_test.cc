// Unit tests for src/common: Status, Result, Rng, string utils, TablePrinter.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table.h"

namespace malleus {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad degree");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad degree");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad degree");
}

TEST(StatusTest, FactoryCodesMatchPredicates) {
  EXPECT_TRUE(Status::Infeasible("x").IsInfeasible());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Infeasible("a"), Status::Infeasible("a"));
  EXPECT_FALSE(Status::Infeasible("a") == Status::Infeasible("b"));
}

Status FailingOp() { return Status::NotFound("nope"); }

Status Propagates() {
  MALLEUS_RETURN_NOT_OK(FailingOp());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Propagates().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Infeasible("no solution");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInfeasible());
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterEven(int v) {
  int half;
  MALLEUS_ASSIGN_OR_RETURN(half, HalveEven(v));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(QuarterEven(6).ok());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All five values should appear.
}

TEST(RngTest, NormalHasReasonableMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(FormatDouble(2.50001, 2), "2.5");
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(1536ULL << 20), "1.50 GiB");
}

TEST(StringUtilTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(0.5e-6 * 2), "1.0 us");
  EXPECT_EQ(FormatSeconds(0.02), "20.0 ms");
  EXPECT_EQ(FormatSeconds(2.0), "2.00 s");
  EXPECT_EQ(FormatSeconds(600.0), "10.0 min");
}

TEST(StringUtilTest, JsonNumberFiniteValues) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(1.25), "1.25");
  EXPECT_EQ(JsonNumber(-3.0), "-3");
  EXPECT_EQ(JsonNumber(1.0 / 3.0), "0.333333333");
  EXPECT_EQ(JsonNumber(1.0 / 3.0, 3), "0.333");
}

TEST(StringUtilTest, JsonNumberNonFiniteBecomesNull) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(JsonNumber(inf), "null");
  EXPECT_EQ(JsonNumber(-inf), "null");
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
}

TEST(StringUtilTest, JsonSanitizeRewritesBareNonFiniteTokens) {
  EXPECT_EQ(JsonSanitizeNonFinite("{\"a\":inf}"), "{\"a\":null}");
  EXPECT_EQ(JsonSanitizeNonFinite("{\"a\":-inf}"), "{\"a\":null}");
  EXPECT_EQ(JsonSanitizeNonFinite("{\"a\":nan}"), "{\"a\":null}");
  EXPECT_EQ(JsonSanitizeNonFinite("{\"a\":-nan}"), "{\"a\":null}");
  EXPECT_EQ(JsonSanitizeNonFinite("[inf,nan,-inf]"), "[null,null,null]");
  EXPECT_EQ(JsonSanitizeNonFinite("{\"a\":nan(0x8000000000000)}"),
            "{\"a\":null}");
  EXPECT_EQ(JsonSanitizeNonFinite("{\"a\":infinity}"), "{\"a\":null}");
}

TEST(StringUtilTest, JsonSanitizeLeavesStringsAndNumbersAlone) {
  // "inf"/"nan" inside string literals are content, not numbers.
  EXPECT_EQ(JsonSanitizeNonFinite("{\"label\":\"inf speedup\"}"),
            "{\"label\":\"inf speedup\"}");
  EXPECT_EQ(JsonSanitizeNonFinite("{\"nan\":1.5e-3}"), "{\"nan\":1.5e-3}");
  // Escaped quotes must not desynchronize the in-string tracker.
  EXPECT_EQ(JsonSanitizeNonFinite("{\"a\":\"x\\\"inf\\\"y\",\"b\":inf}"),
            "{\"a\":\"x\\\"inf\\\"y\",\"b\":null}");
}

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter t("demo");
  t.SetHeader({"name", "value"});
  t.AddRow({"alpha", "1.5"});
  t.AddSeparator();
  t.AddRow({"b", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| alpha |"), std::string::npos);
  // Numeric cells right-aligned.
  EXPECT_NE(s.find("|    22 |"), std::string::npos);
}

TEST(TablePrinterTest, HandlesRaggedRows) {
  TablePrinter t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"only-one"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace malleus
