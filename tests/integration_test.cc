// End-to-end integration tests: the headline claims of the paper, checked
// on the simulated substrate.
//   1. Malleus ~= Megatron when healthy (S7.1 protocol note).
//   2. One straggler roughly halves the baselines' speed; Malleus stays
//      within a modest factor of its healthy speed (S1 columns of Table 2).
//   3. Malleus achieves >= ~85% of the theoretic optimum across situations
//      (Table 3, allowing simulator slack).
//   4. The full trace runs through detection, re-planning and migration
//      with bounded transition cost (Figure 7 behaviour).

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/deepspeed.h"
#include "baselines/malleus_adapter.h"
#include "baselines/megatron.h"
#include "baselines/trace_runner.h"
#include "core/engine.h"

namespace malleus {
namespace {

using straggler::Situation;
using straggler::SituationId;

class IntegrationTest : public ::testing::Test {
 protected:
  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(4);
  model::CostModel cost_{model::ModelSpec::Llama32B(), topo::GpuSpec()};
};

TEST_F(IntegrationTest, MalleusMatchesMegatronWhenHealthy) {
  baselines::MalleusFramework malleus_fw(cluster_, cost_);
  baselines::MegatronBaseline megatron(cluster_, cost_,
                                       baselines::MegatronOptions());
  ASSERT_TRUE(malleus_fw.Initialize(64).ok());
  ASSERT_TRUE(megatron.Initialize(64).ok());
  const Situation healthy(cluster_.num_gpus());
  double malleus_t = 0.0, megatron_t = 0.0;
  for (int i = 0; i < 4; ++i) {
    malleus_t = *malleus_fw.StepSeconds(healthy);
    megatron_t = *megatron.StepSeconds(healthy);
  }
  EXPECT_NEAR(malleus_t, megatron_t, 0.1 * megatron_t);
}

TEST_F(IntegrationTest, SingleStragglerDoublesBaselinesNotMalleus) {
  const Situation healthy(cluster_.num_gpus());
  Result<Situation> s1 = Situation::Canonical(cluster_, SituationId::kS1);
  ASSERT_TRUE(s1.ok());

  auto steady = [&](baselines::TrainingFramework* fw,
                    const Situation& s) {
    double t = 0.0;
    for (int i = 0; i < 5; ++i) t = *fw->StepSeconds(s);
    return t;
  };

  baselines::MegatronBaseline megatron(cluster_, cost_,
                                       baselines::MegatronOptions());
  ASSERT_TRUE(megatron.Initialize(64).ok());
  const double mg_base = steady(&megatron, healthy);
  const double mg_slow = steady(&megatron, *s1);
  EXPECT_GT(mg_slow / mg_base, 1.7);  // Paper: ~2x at S1.

  baselines::DeepSpeedBaseline ds(cluster_, cost_,
                                  baselines::DeepSpeedOptions());
  ASSERT_TRUE(ds.Initialize(64).ok());
  EXPECT_GT(steady(&ds, *s1) / steady(&ds, healthy), 1.6);

  baselines::MalleusFramework fw(cluster_, cost_);
  ASSERT_TRUE(fw.Initialize(64).ok());
  const double ml_base = steady(&fw, healthy);
  const double ml_slow = steady(&fw, *s1);  // Adapts within these steps.
  EXPECT_LT(ml_slow / ml_base, 1.35);  // Paper: 1.05-1.16x.
  EXPECT_LT(ml_slow, mg_slow / 1.5);
}

TEST_F(IntegrationTest, NearTheoreticOptimumAcrossSituations) {
  baselines::MalleusFramework fw(cluster_, cost_);
  ASSERT_TRUE(fw.Initialize(64).ok());
  const Situation healthy(cluster_.num_gpus());
  double base = 0.0;
  for (int i = 0; i < 4; ++i) base = *fw.StepSeconds(healthy);

  for (SituationId id : {SituationId::kS1, SituationId::kS2,
                         SituationId::kS3, SituationId::kS4}) {
    Result<Situation> s = Situation::Canonical(cluster_, id);
    ASSERT_TRUE(s.ok());
    double t = 0.0;
    for (int i = 0; i < 6; ++i) t = *fw.StepSeconds(*s);
    const double optimal = base * s->TheoreticSlowdown();
    // >= ~80% of the theoretic optimum (paper: >= 90% on real hardware;
    // the simulated substrate adds bubble/sync slack on 32 GPUs).
    EXPECT_LT(t / optimal, 1.25) << straggler::SituationName(id);
    // Back to healthy before the next situation.
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(fw.StepSeconds(healthy).ok());
  }
}

TEST_F(IntegrationTest, FullTraceAdaptationIsBounded) {
  core::MalleusEngine engine(cluster_, cost_);
  ASSERT_TRUE(engine.Initialize(64).ok());
  double worst_migration = 0.0;
  int replans = 0;
  for (const auto& phase : straggler::StandardTrace(6)) {
    Result<Situation> truth = Situation::Canonical(cluster_, phase.id);
    ASSERT_TRUE(truth.ok());
    for (int i = 0; i < phase.steps; ++i) {
      Result<core::StepReport> r = engine.Step(*truth);
      ASSERT_TRUE(r.ok()) << r.status();
      worst_migration = std::max(worst_migration, r->migration_seconds);
      if (r->replanned) ++replans;
      // Planning always hides behind training here (S5.3).
      EXPECT_DOUBLE_EQ(r->planning_overflow_seconds, 0.0);
    }
  }
  // Each situation change is detected at least once...
  EXPECT_GE(replans, 6);
  // ...without thrashing (spurious re-plans on noise),
  EXPECT_LE(replans, 20);
  // and migrations stay in the paper's few-seconds regime.
  EXPECT_GT(worst_migration, 0.0);
  EXPECT_LT(worst_migration, 30.0);
}

TEST_F(IntegrationTest, GraduallyWorseningStragglerTracked) {
  core::MalleusEngine engine(cluster_, cost_);
  ASSERT_TRUE(engine.Initialize(64).ok());
  const Situation healthy(cluster_.num_gpus());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(engine.Step(healthy).ok());
  // Rate creeps up level by level; each >5% shift triggers adaptation and
  // the step time stays bounded by the theoretic impact.
  for (int level = 1; level <= 3; ++level) {
    Situation s(cluster_.num_gpus());
    s.SetLevel(0, level);
    double t = 0.0;
    for (int i = 0; i < 4; ++i) t = engine.Step(s)->step_seconds;
    EXPECT_LT(t, 16.0) << "level " << level;  // Healthy ~9.5-10s.
  }
}

}  // namespace
}  // namespace malleus
