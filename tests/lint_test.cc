// Tests for malleus::lint: the diagnostics engine (sink semantics and the
// text/JSON/SARIF renderers) and every analysis pass — one positive and
// one negative case per diagnostic code.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/engine.h"
#include "lint/diagnostic.h"
#include "lint/lint.h"
#include "model/cost_model.h"
#include "net/fabric.h"
#include "net/flow_sim.h"
#include "obs/metrics.h"
#include "plan/plan.h"
#include "plan/plan_checks.h"
#include "plan/uniform.h"
#include "scenario/scenario.h"
#include "sim/pipeline_sim.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace lint {
namespace {

class LintTest : public ::testing::Test {
 protected:
  // dp=2 x tp=4 x pp=4 over all 32 GPUs, b=1, B=64 (the plan_test shape).
  plan::ParallelPlan MakeValidPlan() {
    plan::UniformConfig cfg;
    cfg.dp = 2;
    cfg.tp = 4;
    cfg.pp = 4;
    cfg.micro_batch_size = 1;
    cfg.global_batch = 64;
    Result<plan::ParallelPlan> p =
        plan::BuildUniformPlan(cluster_, cost_, cluster_.AllGpus(), cfg);
    MALLEUS_CHECK_OK(p.status());
    return std::move(p).ValueOrDie();
  }

  // Same shape on the first 16 GPUs only, leaving 16-31 free for standby.
  plan::ParallelPlan MakeSubsetPlan() {
    plan::UniformConfig cfg;
    cfg.dp = 1;
    cfg.tp = 4;
    cfg.pp = 4;
    cfg.micro_batch_size = 1;
    cfg.global_batch = 64;
    const std::vector<topo::GpuId> all = cluster_.AllGpus();
    const std::vector<topo::GpuId> half(all.begin(), all.begin() + 16);
    Result<plan::ParallelPlan> p =
        plan::BuildUniformPlan(cluster_, cost_, half, cfg);
    MALLEUS_CHECK_OK(p.status());
    return std::move(p).ValueOrDie();
  }

  // Structural codes: asserts the valid plan is free of `code` and the
  // mutated plan carries it.
  template <typename Mutate>
  void ExpectStructuralCode(const char* code, Mutate mutate) {
    DiagnosticSink clean;
    plan::LintPlanStructure(MakeValidPlan(), cluster_, cost_, &clean);
    EXPECT_FALSE(clean.HasCode(code)) << code;
    EXPECT_FALSE(clean.HasErrors());

    plan::ParallelPlan p = MakeValidPlan();
    mutate(&p);
    DiagnosticSink sink;
    plan::LintPlanStructure(p, cluster_, cost_, &sink);
    EXPECT_TRUE(sink.HasCode(code)) << code << "\n" << RenderText(sink);
    EXPECT_TRUE(sink.HasErrors());
    // Validate agrees: the same mutation rejects the plan.
    EXPECT_FALSE(p.Validate(cluster_, cost_).ok()) << code;
  }

  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(4);
  model::CostModel cost_{model::ModelSpec::Llama32B(), topo::GpuSpec()};
  straggler::Situation healthy_{32};
};

// ----- Sink + renderers ------------------------------------------------

TEST_F(LintTest, SinkCountsBySeverity) {
  DiagnosticSink sink;
  EXPECT_TRUE(sink.empty());
  sink.Report(Severity::kError, "t.err", "loc", "boom");
  sink.Report(Severity::kWarn, "t.warn", "", "meh");
  sink.Report(Severity::kNote, "t.note", "", "fyi");
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.num_errors(), 1);
  EXPECT_EQ(sink.num_warnings(), 1);
  EXPECT_EQ(sink.num_notes(), 1);
  EXPECT_TRUE(sink.HasErrors());
  EXPECT_TRUE(sink.HasCode("t.warn"));
  EXPECT_FALSE(sink.HasCode("t.missing"));
}

TEST_F(LintTest, SinkMergeAppends) {
  DiagnosticSink a, b;
  a.Report(Severity::kError, "t.a", "", "x");
  b.Report(Severity::kWarn, "t.b", "", "y");
  a.Merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.num_errors(), 1);
  EXPECT_EQ(a.num_warnings(), 1);
  EXPECT_TRUE(a.HasCode("t.b"));
}

TEST_F(LintTest, SinkFailFastShouldStop) {
  DiagnosticSink sink;
  sink.set_fail_fast(true);
  EXPECT_FALSE(sink.ShouldStop());
  sink.Report(Severity::kWarn, "t.w", "", "warn does not stop");
  EXPECT_FALSE(sink.ShouldStop());
  sink.Report(Severity::kError, "t.e", "", "error stops");
  EXPECT_TRUE(sink.ShouldStop());
}

TEST_F(LintTest, DiagnosticToStringFormat) {
  Diagnostic d;
  d.code = "plan.gpu-reused";
  d.severity = Severity::kError;
  d.location = "pipeline[0].stage[1]";
  d.message = "GPU 3 used more than once";
  EXPECT_EQ(d.ToString(),
            "error[plan.gpu-reused] pipeline[0].stage[1]: "
            "GPU 3 used more than once");
  d.location.clear();
  EXPECT_EQ(d.ToString(),
            "error[plan.gpu-reused]: GPU 3 used more than once");
}

TEST_F(LintTest, RenderTextSummaryLine) {
  DiagnosticSink sink;
  EXPECT_EQ(RenderText(sink), "no diagnostics\n");
  sink.Report(Severity::kError, "t.a", "here", "first");
  sink.Report(Severity::kWarn, "t.b", "", "second");
  const std::string text = RenderText(sink);
  EXPECT_NE(text.find("error[t.a] here: first"), std::string::npos) << text;
  EXPECT_NE(text.find("1 error, 1 warning, 0 notes"), std::string::npos)
      << text;
}

TEST_F(LintTest, RenderJsonShape) {
  DiagnosticSink sink;
  sink.Report(Severity::kWarn, "plan.memory-headroom",
              "pipeline[1].stage[0]", "only 4.2% headroom",
              {{"headroom_pct", "4.2"}});
  const std::string json = RenderJson(sink);
  EXPECT_NE(json.find("\"code\":\"plan.memory-headroom\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"severity\":\"warn\""), std::string::npos);
  EXPECT_NE(json.find("\"location\":\"pipeline[1].stage[0]\""),
            std::string::npos);
  EXPECT_NE(json.find("\"headroom_pct\":\"4.2\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":0"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos);
}

TEST_F(LintTest, RenderSarifShape) {
  DiagnosticSink sink;
  sink.Report(Severity::kError, "plan.gpu-reused", "pipeline[0].stage[1]",
              "GPU 3 used more than once", {{"gpu", "3"}});
  sink.Report(Severity::kWarn, "plan.stage-imbalance", "pipeline[0]",
              "stage times span 2x");
  const std::string sarif = RenderSarif(sink, "run.scenario");
  EXPECT_NE(sarif.find("https://json.schemastore.org/sarif-2.1.0.json"),
            std::string::npos)
      << sarif;
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"malleus-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\":\"plan.gpu-reused\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"plan.gpu-reused\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"warning\""), std::string::npos);
  EXPECT_NE(
      sarif.find("\"fullyQualifiedName\":\"pipeline[0].stage[1]\""),
      std::string::npos);
  EXPECT_NE(sarif.find("run.scenario"), std::string::npos);
}

TEST_F(LintTest, RecordDiagnosticMetrics) {
  auto& registry = obs::MetricsRegistry::Global();
  const double errors_before =
      registry.GetCounter("lint.errors")->Value();
  const double code_before =
      registry.GetCounter("lint.diagnostics.t.metric-probe")->Value();
  DiagnosticSink sink;
  sink.Report(Severity::kError, "t.metric-probe", "", "x");
  sink.Report(Severity::kError, "t.metric-probe", "", "y");
  RecordDiagnosticMetrics(sink);
  EXPECT_DOUBLE_EQ(registry.GetCounter("lint.errors")->Value(),
                   errors_before + 2);
  EXPECT_DOUBLE_EQ(
      registry.GetCounter("lint.diagnostics.t.metric-probe")->Value(),
      code_before + 2);
}

TEST_F(LintTest, PassRegistryCoversEveryCode) {
  const std::vector<PassInfo>& passes = Passes();
  EXPECT_GE(passes.size(), 30u);
  // Sorted and unique by code.
  for (size_t i = 1; i < passes.size(); ++i) {
    EXPECT_LT(std::string(passes[i - 1].code), passes[i].code);
  }
  const auto has = [&](const char* code) {
    for (const PassInfo& p : passes) {
      if (std::string(p.code) == code) return true;
    }
    return false;
  };
  for (const char* code :
       {plan::kLintPlanNoPipelines, plan::kLintPlanBadMicroBatch,
        plan::kLintPlanDuplicateStandby, plan::kLintPlanEmptyPipeline,
        plan::kLintPlanNoMicrobatches, plan::kLintPlanLayerCoverage,
        plan::kLintPlanEmptyStage, plan::kLintPlanBadTpDegree,
        plan::kLintPlanNegativeLayers, plan::kLintPlanInvalidGpu,
        plan::kLintPlanTpSpansNodes, plan::kLintPlanGpuReused,
        plan::kLintPlanMemoryCapacity, plan::kLintPlanBatchCoverage,
        kLintPlanStageImbalance, kLintPlanMemoryHeadroom,
        kLintPlanHealthyStandby, kLintPlanMixedTpRates, kLintPlanUnevenData,
        kLintClusterEmpty, kLintClusterBadBandwidth,
        kLintClusterNoUsableMemory, kLintSituationSizeMismatch,
        kLintSituationBadRate, kLintSituationRateAboveFit,
        kLintSituationFailedGpu, kLintScenarioUnknownModel,
        kLintScenarioUnknownPhase, kLintScenarioInvalidValue,
        kLintScenarioGpuOutOfRange, kLintScenarioDuplicateStraggler,
        kLintScenarioUnknownFabric, kLintScenarioFabricFieldIgnored,
        kLintScenarioDynamicInvalidValue, kLintScenarioDynamicSaturated,
        kLintGraphMalformedSchedule, kLintGraphDeadlock,
        kLintNetNegativeLinkBytes, kLintNetVolumeMismatch,
        kLintNetLinkOvercommit}) {
    EXPECT_TRUE(has(code)) << code;
  }
}

// ----- Structural plan checks (one code each) --------------------------

TEST_F(LintTest, PlanNoPipelines) {
  ExpectStructuralCode(plan::kLintPlanNoPipelines, [](plan::ParallelPlan* p) {
    p->pipelines.clear();
  });
}

TEST_F(LintTest, PlanBadMicroBatch) {
  ExpectStructuralCode(plan::kLintPlanBadMicroBatch,
                       [](plan::ParallelPlan* p) { p->micro_batch_size = 0; });
}

TEST_F(LintTest, PlanDuplicateStandby) {
  DiagnosticSink clean;
  plan::ParallelPlan subset = MakeSubsetPlan();
  subset.standby_gpus = {16, 17};
  plan::LintPlanStructure(subset, cluster_, cost_, &clean);
  EXPECT_FALSE(clean.HasCode(plan::kLintPlanDuplicateStandby));

  subset.standby_gpus = {16, 16};
  DiagnosticSink sink;
  plan::LintPlanStructure(subset, cluster_, cost_, &sink);
  EXPECT_TRUE(sink.HasCode(plan::kLintPlanDuplicateStandby));
  EXPECT_FALSE(subset.Validate(cluster_, cost_).ok());
}

TEST_F(LintTest, PlanEmptyPipeline) {
  ExpectStructuralCode(plan::kLintPlanEmptyPipeline,
                       [](plan::ParallelPlan* p) {
                         p->pipelines[0].stages.clear();
                       });
}

TEST_F(LintTest, PlanNoMicrobatches) {
  ExpectStructuralCode(plan::kLintPlanNoMicrobatches,
                       [](plan::ParallelPlan* p) {
                         p->pipelines[0].num_microbatches = 0;
                       });
}

TEST_F(LintTest, PlanLayerCoverage) {
  ExpectStructuralCode(plan::kLintPlanLayerCoverage,
                       [](plan::ParallelPlan* p) {
                         p->pipelines[0].stages[0].num_layers -= 1;
                       });
}

TEST_F(LintTest, PlanEmptyStage) {
  ExpectStructuralCode(plan::kLintPlanEmptyStage, [](plan::ParallelPlan* p) {
    p->pipelines[0].stages[0].group.gpus.clear();
  });
}

TEST_F(LintTest, PlanBadTpDegree) {
  ExpectStructuralCode(plan::kLintPlanBadTpDegree, [](plan::ParallelPlan* p) {
    p->pipelines[0].stages[0].group.gpus.pop_back();  // Size 3.
  });
}

TEST_F(LintTest, PlanNegativeLayers) {
  ExpectStructuralCode(plan::kLintPlanNegativeLayers,
                       [](plan::ParallelPlan* p) {
                         // Keep the pipeline total intact so only the
                         // negative count fires.
                         p->pipelines[0].stages[0].num_layers = -1;
                         p->pipelines[0].stages[1].num_layers += 16;
                       });
}

TEST_F(LintTest, PlanInvalidGpu) {
  ExpectStructuralCode(plan::kLintPlanInvalidGpu, [](plan::ParallelPlan* p) {
    p->pipelines[0].stages[0].group.gpus[0] = 999;
  });
}

TEST_F(LintTest, PlanTpSpansNodes) {
  ExpectStructuralCode(plan::kLintPlanTpSpansNodes,
                       [](plan::ParallelPlan* p) {
                         p->pipelines[0].stages[0].group.gpus[0] = 12;
                       });
}

TEST_F(LintTest, PlanGpuReused) {
  ExpectStructuralCode(plan::kLintPlanGpuReused, [](plan::ParallelPlan* p) {
    // Stage 1's first GPU is on the same node, so only reuse fires.
    p->pipelines[0].stages[0].group.gpus[0] =
        p->pipelines[0].stages[1].group.gpus[0];
  });
}

TEST_F(LintTest, PlanMemoryCapacity) {
  ExpectStructuralCode(plan::kLintPlanMemoryCapacity,
                       [](plan::ParallelPlan* p) {
                         plan::Pipeline& pipe = p->pipelines[0];
                         pipe.stages[0].num_layers = 60;
                         for (size_t j = 1; j < pipe.stages.size(); ++j) {
                           pipe.stages[j].num_layers = 0;
                         }
                       });
}

TEST_F(LintTest, PlanBatchCoverage) {
  ExpectStructuralCode(plan::kLintPlanBatchCoverage,
                       [](plan::ParallelPlan* p) {
                         p->pipelines[1].num_microbatches += 1;
                       });
}

TEST_F(LintTest, CollectAllModeReportsMultipleErrors) {
  plan::ParallelPlan p = MakeValidPlan();
  p.micro_batch_size = 0;
  p.pipelines[0].stages[0].num_layers -= 1;
  DiagnosticSink sink;  // Collect-all (no fail-fast).
  plan::LintPlanStructure(p, cluster_, cost_, &sink);
  EXPECT_TRUE(sink.HasCode(plan::kLintPlanBadMicroBatch));
  EXPECT_TRUE(sink.HasCode(plan::kLintPlanLayerCoverage));
  EXPECT_GE(sink.num_errors(), 2);
  // Fail-fast mode stops at the first.
  DiagnosticSink fast;
  fast.set_fail_fast(true);
  plan::LintPlanStructure(p, cluster_, cost_, &fast);
  EXPECT_EQ(fast.num_errors(), 1);
}

TEST_F(LintTest, ValidateMatchesFirstDiagnostic) {
  // Validate's Status must be byte-for-byte the fail-fast first finding.
  const auto check = [&](plan::ParallelPlan p) {
    DiagnosticSink fast;
    fast.set_fail_fast(true);
    plan::LintPlanStructure(p, cluster_, cost_, &fast);
    ASSERT_TRUE(fast.HasErrors());
    const Status expected =
        plan::StatusFromPlanDiagnostic(fast.diagnostics().front());
    const Status actual = p.Validate(cluster_, cost_);
    EXPECT_EQ(actual.code(), expected.code());
    EXPECT_EQ(actual.message(), expected.message());
  };
  plan::ParallelPlan a = MakeValidPlan();
  a.pipelines.clear();
  check(a);
  plan::ParallelPlan b = MakeValidPlan();
  b.pipelines[0].stages[0].group.gpus[0] =
      b.pipelines[1].stages[0].group.gpus[0];
  check(b);
  plan::ParallelPlan c = MakeValidPlan();
  c.pipelines[0].num_microbatches += 3;
  check(c);
}

// ----- Plan quality passes ---------------------------------------------

TEST_F(LintTest, PlanStageImbalance) {
  const plan::ParallelPlan p = MakeValidPlan();
  DiagnosticSink clean;
  LintPlanQuality(p, cluster_, cost_, healthy_, &clean);
  EXPECT_FALSE(clean.HasCode(kLintPlanStageImbalance));

  straggler::Situation skew(cluster_.num_gpus());
  skew.SetRate(0, 3.0);  // Stage 0 of pipeline 0 runs 3x slower.
  DiagnosticSink sink;
  LintPlanQuality(p, cluster_, cost_, skew, &sink);
  EXPECT_TRUE(sink.HasCode(kLintPlanStageImbalance)) << RenderText(sink);
  EXPECT_FALSE(sink.HasErrors());  // Warn-level only.
}

TEST_F(LintTest, PlanMemoryHeadroom) {
  const plan::ParallelPlan p = MakeValidPlan();
  DiagnosticSink clean;
  LintPlanQuality(p, cluster_, cost_, healthy_, &clean);
  EXPECT_FALSE(clean.HasCode(kLintPlanMemoryHeadroom));

  // Shrink the GPU so the same plan sits ~5% under capacity.
  const double used = plan::StageMemoryBytesPerGpu(p, 0, 0, cost_);
  topo::GpuSpec tight;
  tight.memory_bytes =
      tight.reserved_bytes + static_cast<uint64_t>(used * 1.05);
  const model::CostModel tight_cost(model::ModelSpec::Llama32B(), tight);
  DiagnosticSink sink;
  LintPlanQuality(p, cluster_, tight_cost, healthy_, &sink);
  EXPECT_TRUE(sink.HasCode(kLintPlanMemoryHeadroom)) << RenderText(sink);
}

TEST_F(LintTest, PlanHealthyStandby) {
  plan::ParallelPlan p = MakeSubsetPlan();
  p.standby_gpus = {16};
  straggler::Situation straggling(cluster_.num_gpus());
  straggling.SetLevel(16, 2);  // Standby for cause: it is a straggler.
  DiagnosticSink clean;
  LintPlanQuality(p, cluster_, cost_, straggling, &clean);
  EXPECT_FALSE(clean.HasCode(kLintPlanHealthyStandby));

  DiagnosticSink sink;
  LintPlanQuality(p, cluster_, cost_, healthy_, &sink);
  EXPECT_TRUE(sink.HasCode(kLintPlanHealthyStandby)) << RenderText(sink);
}

TEST_F(LintTest, PlanMixedTpRates) {
  const plan::ParallelPlan p = MakeValidPlan();
  DiagnosticSink clean;
  LintPlanQuality(p, cluster_, cost_, healthy_, &clean);
  EXPECT_FALSE(clean.HasCode(kLintPlanMixedTpRates));

  straggler::Situation mixed(cluster_.num_gpus());
  mixed.SetRate(0, 2.0);  // GPU 0 shares a TP group with healthy 1, 2, 3.
  DiagnosticSink sink;
  LintPlanQuality(p, cluster_, cost_, mixed, &sink);
  EXPECT_TRUE(sink.HasCode(kLintPlanMixedTpRates)) << RenderText(sink);
}

TEST_F(LintTest, PlanUnevenData) {
  plan::ParallelPlan p = MakeValidPlan();
  DiagnosticSink clean;
  LintPlanQuality(p, cluster_, cost_, healthy_, &clean);
  EXPECT_FALSE(clean.HasCode(kLintPlanUnevenData));

  // Equal bottlenecks (healthy, identical pipelines) but m = 31 vs 33.
  p.pipelines[0].num_microbatches = 31;
  p.pipelines[1].num_microbatches = 33;
  DiagnosticSink sink;
  LintPlanQuality(p, cluster_, cost_, healthy_, &sink);
  EXPECT_TRUE(sink.HasCode(kLintPlanUnevenData)) << RenderText(sink);
}

TEST_F(LintTest, LintPlanSkipsQualityOnStructuralErrors) {
  plan::ParallelPlan p = MakeValidPlan();
  p.micro_batch_size = 0;  // Structurally broken.
  DiagnosticSink sink;
  LintPlan(p, cluster_, cost_, &healthy_, &sink);
  EXPECT_TRUE(sink.HasErrors());
  EXPECT_EQ(sink.num_warnings(), 0);
}

// ----- Cluster / situation / scenario passes ---------------------------

TEST_F(LintTest, ClusterEmpty) {
  DiagnosticSink clean;
  LintCluster(cluster_, &clean);
  EXPECT_TRUE(clean.empty()) << RenderText(clean);

  DiagnosticSink sink;
  LintCluster(topo::ClusterSpec(), &sink);
  EXPECT_TRUE(sink.HasCode(kLintClusterEmpty));
}

TEST_F(LintTest, ClusterBadBandwidth) {
  topo::LinkSpec link;
  link.inter_node_gbps = 0.0;
  const topo::ClusterSpec broken(4, 8, topo::GpuSpec(), link);
  DiagnosticSink sink;
  LintCluster(broken, &sink);
  EXPECT_TRUE(sink.HasCode(kLintClusterBadBandwidth));

  // A single-node cluster never crosses the inter-node fabric, so the
  // same link spec is fine there.
  DiagnosticSink single;
  LintCluster(topo::ClusterSpec(1, 8, topo::GpuSpec(), link), &single);
  EXPECT_FALSE(single.HasCode(kLintClusterBadBandwidth));
}

TEST_F(LintTest, ClusterNoUsableMemory) {
  topo::GpuSpec gpu;
  gpu.memory_bytes = 1ULL << 30;
  gpu.reserved_bytes = 4096ULL << 20;  // Reserve swallows everything.
  DiagnosticSink sink;
  LintCluster(topo::ClusterSpec(4, 8, gpu), &sink);
  EXPECT_TRUE(sink.HasCode(kLintClusterNoUsableMemory));
}

TEST_F(LintTest, SituationSizeMismatch) {
  DiagnosticSink clean;
  LintSituation(cluster_, healthy_, &clean);
  EXPECT_TRUE(clean.empty());

  DiagnosticSink sink;
  LintSituation(cluster_, straggler::Situation(8), &sink);
  EXPECT_TRUE(sink.HasCode(kLintSituationSizeMismatch));
}

TEST_F(LintTest, SituationBadRate) {
  straggler::Situation s(cluster_.num_gpus());
  s.SetRate(3, 0.5);  // Below 1: faster than healthy is not a slowdown.
  DiagnosticSink sink;
  LintSituation(cluster_, s, &sink);
  EXPECT_TRUE(sink.HasCode(kLintSituationBadRate));

  s.SetRate(3, 1.0);
  DiagnosticSink clean;
  LintSituation(cluster_, s, &clean);
  EXPECT_FALSE(clean.HasCode(kLintSituationBadRate));
}

TEST_F(LintTest, SituationRateAboveFit) {
  straggler::Situation s(cluster_.num_gpus());
  s.SetRate(3, 20.0);  // Beyond level 8 (x = 12.52).
  DiagnosticSink sink;
  LintSituation(cluster_, s, &sink);
  EXPECT_TRUE(sink.HasCode(kLintSituationRateAboveFit));
  EXPECT_FALSE(sink.HasErrors());  // Extrapolation is a warning.

  s.SetRate(3, straggler::RateForLevel(8));
  DiagnosticSink clean;
  LintSituation(cluster_, s, &clean);
  EXPECT_FALSE(clean.HasCode(kLintSituationRateAboveFit));
}

TEST_F(LintTest, SituationFailedGpu) {
  straggler::Situation s(cluster_.num_gpus());
  s.Fail(7);
  DiagnosticSink sink;
  LintSituation(cluster_, s, &sink);
  EXPECT_TRUE(sink.HasCode(kLintSituationFailedGpu));
  EXPECT_FALSE(sink.HasErrors());  // A note, not an error.
  EXPECT_EQ(sink.num_notes(), 1);
}

TEST_F(LintTest, ScenarioUnknownModel) {
  scenario::ScenarioSpec spec;
  DiagnosticSink clean;
  LintScenario(spec, &clean);
  EXPECT_TRUE(clean.empty()) << RenderText(clean);

  spec.model = "13b";
  DiagnosticSink sink;
  LintScenario(spec, &sink);
  EXPECT_TRUE(sink.HasCode(kLintScenarioUnknownModel));
}

TEST_F(LintTest, ScenarioUnknownPhase) {
  scenario::ScenarioSpec spec;
  spec.phases = {"normal", "s9"};
  DiagnosticSink sink;
  LintScenario(spec, &sink);
  EXPECT_TRUE(sink.HasCode(kLintScenarioUnknownPhase));

  spec.phases = {"normal", "s6"};
  DiagnosticSink clean;
  LintScenario(spec, &clean);
  EXPECT_FALSE(clean.HasCode(kLintScenarioUnknownPhase));
}

TEST_F(LintTest, ScenarioInvalidValue) {
  scenario::ScenarioSpec spec;
  spec.batch = 0;
  spec.net_model = "carrier-pigeon";
  DiagnosticSink sink;
  LintScenario(spec, &sink);
  EXPECT_TRUE(sink.HasCode(kLintScenarioInvalidValue));
  EXPECT_GE(sink.num_errors(), 2);  // Both findings, one pass.
}

TEST_F(LintTest, ScenarioUnknownFabric) {
  scenario::ScenarioSpec spec;
  spec.fabric = "torus";
  DiagnosticSink sink;
  LintScenario(spec, &sink);
  EXPECT_TRUE(sink.HasCode(kLintScenarioUnknownFabric));
  EXPECT_TRUE(sink.HasErrors());

  scenario::ScenarioSpec ok;
  ok.fabric = "fat-tree";
  ok.nodes = 4;
  ok.nodes_per_pod = 2;
  DiagnosticSink clean;
  LintScenario(ok, &clean);
  EXPECT_TRUE(clean.empty()) << RenderText(clean);
}

TEST_F(LintTest, ScenarioFabricFieldValidation) {
  // Fat-tree with a pod size that does not divide the nodes: error.
  scenario::ScenarioSpec bad_pod;
  bad_pod.fabric = "fat-tree";
  bad_pod.nodes = 4;
  bad_pod.nodes_per_pod = 3;
  DiagnosticSink pod_sink;
  LintScenario(bad_pod, &pod_sink);
  EXPECT_TRUE(pod_sink.HasCode(kLintScenarioInvalidValue));

  // Fat-tree without a pod size: error.
  scenario::ScenarioSpec no_pod;
  no_pod.fabric = "fat-tree";
  DiagnosticSink no_pod_sink;
  LintScenario(no_pod, &no_pod_sink);
  EXPECT_TRUE(no_pod_sink.HasCode(kLintScenarioInvalidValue));

  // Oversubscription below 1 on a hierarchical fabric: error.
  scenario::ScenarioSpec bad_oversub;
  bad_oversub.fabric = "rail";
  bad_oversub.oversubscription = 0.5;
  DiagnosticSink oversub_sink;
  LintScenario(bad_oversub, &oversub_sink);
  EXPECT_TRUE(oversub_sink.HasCode(kLintScenarioInvalidValue));

  // Fields that do not apply to the chosen kind: warn, not error.
  scenario::ScenarioSpec stray;
  stray.fabric = "flat";
  stray.nodes_per_pod = 2;
  stray.oversubscription = 4.0;
  DiagnosticSink stray_sink;
  LintScenario(stray, &stray_sink);
  EXPECT_TRUE(stray_sink.HasCode(kLintScenarioFabricFieldIgnored));
  EXPECT_FALSE(stray_sink.HasErrors());
}

TEST_F(LintTest, ScenarioDynamicInvalidValue) {
  // A well-formed dynamic block lints clean.
  scenario::ScenarioSpec ok;
  ok.dynamic.enabled = true;
  ok.dynamic.straggle_rate = 0.002;
  ok.dynamic.fail_rate = 0.0002;
  ok.dynamic.recover_iters = 40;
  DiagnosticSink clean;
  LintScenario(ok, &clean);
  EXPECT_TRUE(clean.empty()) << RenderText(clean);

  scenario::ScenarioSpec spec;
  spec.dynamic.enabled = true;
  spec.dynamic.iterations = 0;
  spec.dynamic.straggle_rate = 1.5;
  spec.dynamic.max_level = 9;
  DiagnosticSink sink;
  LintScenario(spec, &sink);
  EXPECT_TRUE(sink.HasCode(kLintScenarioDynamicInvalidValue));
  EXPECT_GE(sink.num_errors(), 3);  // All three findings, one pass.

  // NaN rates are invalid, not silently in-range.
  scenario::ScenarioSpec nan_spec;
  nan_spec.dynamic.enabled = true;
  nan_spec.dynamic.fail_rate = std::nan("");
  DiagnosticSink nan_sink;
  LintScenario(nan_spec, &nan_sink);
  EXPECT_TRUE(nan_sink.HasCode(kLintScenarioDynamicInvalidValue));
}

TEST_F(LintTest, ScenarioDynamicSaturated) {
  // 32 GPUs, per-GPU straggle probability 0.05/iter, mean heal 100 iters:
  // ~160 expected concurrent faults >> 16 = num_gpus / 2.
  scenario::ScenarioSpec spec;
  spec.dynamic.enabled = true;
  spec.dynamic.straggle_rate = 0.05;
  spec.dynamic.recover_iters = 100;
  DiagnosticSink sink;
  LintScenario(spec, &sink);
  EXPECT_TRUE(sink.HasCode(kLintScenarioDynamicSaturated));
  EXPECT_FALSE(sink.HasErrors());  // A warning, not an error.

  spec.dynamic.straggle_rate = 0.001;
  spec.dynamic.recover_iters = 50;
  DiagnosticSink clean;
  LintScenario(spec, &clean);
  EXPECT_FALSE(clean.HasCode(kLintScenarioDynamicSaturated));
}

TEST_F(LintTest, ScenarioGpuOutOfRange) {
  scenario::ScenarioSpec spec;  // 4 x 8 = 32 GPUs.
  scenario::StragglerEntry entry;
  entry.gpu = 99;
  entry.level = 2;
  spec.stragglers = {entry};
  DiagnosticSink sink;
  LintScenario(spec, &sink);
  EXPECT_TRUE(sink.HasCode(kLintScenarioGpuOutOfRange));

  spec.stragglers[0].gpu = 31;
  DiagnosticSink clean;
  LintScenario(spec, &clean);
  EXPECT_FALSE(clean.HasCode(kLintScenarioGpuOutOfRange));
}

TEST_F(LintTest, ScenarioDuplicateStraggler) {
  scenario::ScenarioSpec spec;
  scenario::StragglerEntry a, b;
  a.gpu = 3;
  a.level = 1;
  b.gpu = 3;
  b.level = 2;
  spec.stragglers = {a, b};
  DiagnosticSink sink;
  LintScenario(spec, &sink);
  EXPECT_TRUE(sink.HasCode(kLintScenarioDuplicateStraggler));

  spec.stragglers[1].gpu = 4;
  DiagnosticSink clean;
  LintScenario(spec, &clean);
  EXPECT_FALSE(clean.HasCode(kLintScenarioDuplicateStraggler));
}

TEST_F(LintTest, ScenarioRateAndLevelRanges) {
  scenario::ScenarioSpec spec;
  scenario::StragglerEntry bad_rate, high_level;
  bad_rate.gpu = 1;
  bad_rate.is_rate = true;
  bad_rate.rate = 0.25;
  high_level.gpu = 2;
  high_level.level = 9;
  spec.stragglers = {bad_rate, high_level};
  DiagnosticSink sink;
  LintScenario(spec, &sink);
  EXPECT_TRUE(sink.HasCode(kLintSituationBadRate));
  EXPECT_TRUE(sink.HasCode(kLintSituationRateAboveFit));
}

// ----- Event-graph passes ----------------------------------------------

TEST_F(LintTest, Built1F1BSchedulesAreClean) {
  for (int pp : {1, 2, 4, 8}) {
    const int64_t m = 8;
    std::vector<std::vector<sim::StageTask>> per_stage(pp);
    for (int j = 0; j < pp; ++j) {
      per_stage[j] = sim::Build1F1BSchedule(j, pp, m);
    }
    DiagnosticSink sink;
    LintPipelineSchedule(per_stage, m, "pipeline[0]", &sink);
    EXPECT_TRUE(sink.empty()) << "pp=" << pp << "\n" << RenderText(sink);
  }
}

TEST_F(LintTest, GraphMalformedSchedule) {
  // pp=1, m=2 but micro-batch 1's backward is missing.
  std::vector<std::vector<sim::StageTask>> per_stage(1);
  per_stage[0] = {{true, 0}, {false, 0}, {true, 1}};
  DiagnosticSink sink;
  LintPipelineSchedule(per_stage, 2, "", &sink);
  EXPECT_TRUE(sink.HasCode(kLintGraphMalformedSchedule));
  // No deadlock piled on top: playback of a non-permutation is skipped.
  EXPECT_FALSE(sink.HasCode(kLintGraphDeadlock));
}

TEST_F(LintTest, GraphDeadlock) {
  // A complete permutation that orders the backward before its own
  // forward: topologically impossible.
  std::vector<std::vector<sim::StageTask>> per_stage(1);
  per_stage[0] = {{false, 0}, {true, 0}};
  DiagnosticSink sink;
  LintPipelineSchedule(per_stage, 1, "pipeline[2]", &sink);
  EXPECT_TRUE(sink.HasCode(kLintGraphDeadlock)) << RenderText(sink);
  EXPECT_EQ(sink.diagnostics().front().location, "pipeline[2].stage[0]");
}

TEST_F(LintTest, GraphCrossStageDeadlock) {
  // Two stages; stage 1 demands micro 1's forward before stage 0 has
  // produced it — stage orders that cannot interleave.
  std::vector<std::vector<sim::StageTask>> per_stage(2);
  per_stage[0] = {{true, 0}, {false, 0}, {true, 1}, {false, 1}};
  per_stage[1] = {{true, 1}, {false, 1}, {true, 0}, {false, 0}};
  DiagnosticSink sink;
  LintPipelineSchedule(per_stage, 2, "", &sink);
  EXPECT_TRUE(sink.HasCode(kLintGraphDeadlock)) << RenderText(sink);
}

TEST_F(LintTest, LintEventGraphOnValidPlan) {
  DiagnosticSink sink;
  LintEventGraph(MakeValidPlan(), &sink);
  EXPECT_TRUE(sink.empty()) << RenderText(sink);
}

// ----- Flow-conservation passes ----------------------------------------

TEST_F(LintTest, FlowAuditOfRealRunIsClean) {
  const net::Fabric fabric(cluster_);
  net::FlowSim sim(fabric);
  net::Flow flow;
  flow.src = 0;
  flow.dst = 9;  // Cross-node: exercises NVLink ports and both NICs.
  flow.bytes = 1 << 20;
  sim.Submit(flow);
  sim.Run();
  const FlowAudit audit = AuditFlowSim(sim);
  EXPECT_DOUBLE_EQ(audit.total_flow_bytes, 1 << 20);
  EXPECT_EQ(audit.link_bytes.size(),
            static_cast<size_t>(fabric.num_links()));
  DiagnosticSink sink;
  LintFlowConservation(audit, 1 << 20, 1e-6, &sink);
  EXPECT_TRUE(sink.empty()) << RenderText(sink);
}

TEST_F(LintTest, NetNegativeLinkBytes) {
  FlowAudit audit;
  audit.total_flow_bytes = 100.0;
  audit.link_bytes = {-5.0};
  audit.link_peak_utilization = {0.5};
  audit.link_names = {"gpu0.out"};
  DiagnosticSink sink;
  LintFlowConservation(audit, 100.0, 1e-6, &sink);
  EXPECT_TRUE(sink.HasCode(kLintNetNegativeLinkBytes));
}

TEST_F(LintTest, NetLinkOvercommit) {
  FlowAudit audit;
  audit.total_flow_bytes = 100.0;
  audit.link_bytes = {100.0};
  audit.link_peak_utilization = {1.5};  // 150% of capacity.
  audit.link_names = {"node0.nic.out"};
  DiagnosticSink sink;
  LintFlowConservation(audit, 100.0, 1e-6, &sink);
  EXPECT_TRUE(sink.HasCode(kLintNetLinkOvercommit));

  audit.link_peak_utilization = {1.0};  // Saturated is legal.
  DiagnosticSink clean;
  LintFlowConservation(audit, 100.0, 1e-6, &clean);
  EXPECT_FALSE(clean.HasCode(kLintNetLinkOvercommit));
}

TEST_F(LintTest, NetVolumeMismatch) {
  FlowAudit audit;
  audit.total_flow_bytes = 90.0;
  DiagnosticSink sink;
  LintFlowConservation(audit, 100.0, 1e-6, &sink);
  EXPECT_TRUE(sink.HasCode(kLintNetVolumeMismatch));

  audit.total_flow_bytes = 100.0;
  DiagnosticSink clean;
  LintFlowConservation(audit, 100.0, 1e-6, &clean);
  EXPECT_FALSE(clean.HasCode(kLintNetVolumeMismatch));
}

// ----- Engine integration ----------------------------------------------

TEST_F(LintTest, EngineRefusesErrorPlans) {
  core::MalleusEngine engine(cluster_, cost_);
  plan::ParallelPlan broken = MakeValidPlan();
  broken.pipelines[0].stages[0].group.gpus[0] =
      broken.pipelines[1].stages[0].group.gpus[0];  // GPU reused.
  const Status refused = engine.InitializeWithPlan(std::move(broken));
  EXPECT_FALSE(refused.ok());
  EXPECT_NE(refused.message().find("plan refused"), std::string::npos)
      << refused.ToString();
  EXPECT_NE(refused.message().find(plan::kLintPlanGpuReused),
            std::string::npos)
      << refused.ToString();

  // And accepts a clean plan.
  core::MalleusEngine ok_engine(cluster_, cost_);
  EXPECT_TRUE(ok_engine.InitializeWithPlan(MakeValidPlan()).ok());
}

}  // namespace
}  // namespace lint
}  // namespace malleus
