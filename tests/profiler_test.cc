// Tests for core/profiler: rate estimation through noise, quantization,
// 5% shift detection, failure tracking, and standby probes.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/profiler.h"

namespace malleus {
namespace core {
namespace {

TEST(ProfilerTest, HealthyFleetSnapsToOne) {
  Profiler p(4);
  Rng rng(1);
  for (int step = 0; step < 10; ++step) {
    std::vector<double> measured(4);
    for (double& m : measured) m = 1.0 + rng.Normal(0.0, 0.01);
    p.RecordStep(measured);
  }
  for (int g = 0; g < 4; ++g) {
    EXPECT_DOUBLE_EQ(p.Estimated().rate(g), 1.0);
  }
  EXPECT_FALSE(p.ShiftDetected());
}

TEST(ProfilerTest, StragglerDetectedThroughNoise) {
  Profiler p(8);
  Rng rng(2);
  p.AcknowledgeShift();
  std::vector<double> measured(8);
  for (int g = 0; g < 8; ++g) measured[g] = 1.0 + rng.Normal(0.0, 0.01);
  measured[3] = 2.6 * (1.0 + rng.Normal(0.0, 0.01));
  p.RecordStep(measured);
  EXPECT_TRUE(p.ShiftDetected());
  EXPECT_NEAR(p.Estimated().rate(3), 2.6, 0.15);
  EXPECT_DOUBLE_EQ(p.Estimated().rate(0), 1.0);
}

TEST(ProfilerTest, EquallyImpairedGpusReportIdenticalRates) {
  // The quantization grid must collapse equally-slow GPUs onto one value,
  // preserving the planner's "majority share y-hat" structure.
  Profiler p(8);
  Rng rng(3);
  std::vector<double> measured(8);
  for (int g = 0; g < 8; ++g) {
    measured[g] = 2.62 * (1.0 + rng.Normal(0.0, 0.01));
  }
  // A healthy reference so the median normalization has an anchor.
  measured[7] = 1.0;
  p.RecordStep(measured);
  const double first = p.Estimated().rate(0);
  for (int g = 1; g < 7; ++g) {
    EXPECT_DOUBLE_EQ(p.Estimated().rate(g), first);
  }
}

TEST(ProfilerTest, SmallDriftDoesNotTriggerShift) {
  Profiler p(4);
  p.RecordStep({1.0, 1.0, 2.6, 1.0});
  p.AcknowledgeShift();
  // 2% wiggle on the straggler: below the 5% threshold (and within one
  // quantization bucket).
  p.RecordStep({1.0, 1.0, 2.65, 1.0});
  EXPECT_FALSE(p.ShiftDetected());
  // A genuine worsening to 3.9 is a >5% shift.
  p.RecordStep({1.0, 1.0, 3.9, 1.0});
  EXPECT_TRUE(p.ShiftDetected());
}

TEST(ProfilerTest, RecoveryDetected) {
  Profiler p(4);
  p.RecordStep({1.0, 2.6, 1.0, 1.0});
  p.AcknowledgeShift();
  p.RecordStep({1.0, 1.0, 1.0, 1.0});
  EXPECT_TRUE(p.ShiftDetected());
  EXPECT_DOUBLE_EQ(p.Estimated().rate(1), 1.0);
}

TEST(ProfilerTest, MissingMeasurementsKeepPreviousEstimate) {
  Profiler p(4);
  p.RecordStep({1.0, 2.6, 1.0, 1.0});
  const double est = p.Estimated().rate(1);
  p.RecordStep({1.0, 0.0, 1.0, 1.0});  // GPU 1 idle this step.
  EXPECT_DOUBLE_EQ(p.Estimated().rate(1), est);
}

TEST(ProfilerTest, FailureAndProbeRecovery) {
  Profiler p(4);
  p.MarkFailed(2);
  EXPECT_TRUE(p.Estimated().IsFailed(2));
  EXPECT_TRUE(p.ShiftDetected());
  p.AcknowledgeShift();
  EXPECT_FALSE(p.ShiftDetected());
  // Training measurements cannot clear a failure...
  p.RecordStep({1.0, 1.0, 1.0, 1.0});
  EXPECT_TRUE(p.Estimated().IsFailed(2));
  // ...but a successful standby probe can (S5.2).
  p.RecordProbe(2, 1.01);
  EXPECT_FALSE(p.Estimated().IsFailed(2));
  EXPECT_DOUBLE_EQ(p.Estimated().rate(2), 1.0);
}

TEST(ProfilerTest, ProbeFeedsStandbyRates) {
  Profiler p(4);
  p.RecordProbe(3, 2.6);
  EXPECT_NEAR(p.Estimated().rate(3), 2.6, 0.1);
}

TEST(ProfilerTest, MajorityStragglingKeepsAbsoluteScale) {
  // When most of the fleet straggles (S6), the median is itself slow; the
  // profiler must not renormalize the stragglers back to 1.
  Profiler p(4);
  p.RecordStep({2.6, 2.6, 2.6, 1.0});
  EXPECT_GT(p.Estimated().rate(0), 2.0);
  EXPECT_DOUBLE_EQ(p.Estimated().rate(3), 1.0);
}

TEST(ProfilerTest, EmaSmoothingOption) {
  ProfilerOptions opts;
  opts.ema_alpha = 0.5;
  Profiler p(2, opts);
  p.RecordStep({1.0, 3.0});
  p.RecordStep({1.0, 1.0});
  // Smoothed: halfway between 3 and 1 (then quantized).
  EXPECT_GT(p.Estimated().rate(1), 1.5);
  EXPECT_LT(p.Estimated().rate(1), 2.5);
}

}  // namespace
}  // namespace core
}  // namespace malleus
