// Tests for malleus::scenario: the key=value scenario-file parser (syntax
// only, line-numbered errors) and resolution against the library types.

#include <gtest/gtest.h>

#include <string>

#include "net/fabric.h"
#include "scenario/scenario.h"
#include "straggler/situation.h"

namespace malleus {
namespace scenario {
namespace {

TEST(ScenarioParseTest, DefaultsWhenEmpty) {
  Result<ScenarioSpec> spec = ParseScenarioString("");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->model, "32b");
  EXPECT_EQ(spec->nodes, 4);
  EXPECT_EQ(spec->gpus_per_node, 8);
  EXPECT_EQ(spec->batch, 64);
  EXPECT_EQ(spec->steps, 6);
  EXPECT_EQ(spec->seed, 42u);
  EXPECT_TRUE(spec->net_model.empty());
  EXPECT_TRUE(spec->phases.empty());
  EXPECT_TRUE(spec->stragglers.empty());
}

TEST(ScenarioParseTest, FullFile) {
  const char* text =
      "# A comment line.\n"
      "model = 70b\n"
      "nodes = 8\n"
      "gpus_per_node = 8\n"
      "batch = 128   # trailing comment\n"
      "steps = 3\n"
      "seed = 7\n"
      "net_model = flow\n"
      "phase = normal\n"
      "phase = s3\n"
      "straggler = 9:2\n"
      "straggler = 17:x2.5\n";
  Result<ScenarioSpec> spec = ParseScenarioString(text);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->model, "70b");
  EXPECT_EQ(spec->nodes, 8);
  EXPECT_EQ(spec->batch, 128);
  EXPECT_EQ(spec->steps, 3);
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_EQ(spec->net_model, "flow");
  ASSERT_EQ(spec->phases.size(), 2u);
  EXPECT_EQ(spec->phases[0], "normal");
  EXPECT_EQ(spec->phases[1], "s3");
  ASSERT_EQ(spec->stragglers.size(), 2u);
  EXPECT_EQ(spec->stragglers[0].gpu, 9);
  EXPECT_FALSE(spec->stragglers[0].is_rate);
  EXPECT_EQ(spec->stragglers[0].level, 2);
  EXPECT_EQ(spec->stragglers[0].line, 11);
  EXPECT_EQ(spec->stragglers[1].gpu, 17);
  EXPECT_TRUE(spec->stragglers[1].is_rate);
  EXPECT_DOUBLE_EQ(spec->stragglers[1].rate, 2.5);
}

TEST(ScenarioParseTest, SyntaxErrorsNameTheLine) {
  // Line 2 has no '='.
  Result<ScenarioSpec> no_eq = ParseScenarioString("model = 32b\nbogus\n");
  ASSERT_FALSE(no_eq.ok());
  EXPECT_NE(no_eq.status().message().find("line 2"), std::string::npos)
      << no_eq.status().ToString();

  Result<ScenarioSpec> unknown = ParseScenarioString("\n\nwat = 3\n");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(unknown.status().message().find("unknown key: wat"),
            std::string::npos);

  Result<ScenarioSpec> empty_value = ParseScenarioString("model =\n");
  ASSERT_FALSE(empty_value.ok());
  EXPECT_NE(empty_value.status().message().find("empty value for model"),
            std::string::npos);

  Result<ScenarioSpec> bad_int = ParseScenarioString("nodes = four\n");
  ASSERT_FALSE(bad_int.ok());
  EXPECT_NE(bad_int.status().message().find("bad nodes"), std::string::npos);
}

TEST(ScenarioParseTest, StragglerSyntax) {
  EXPECT_FALSE(ParseScenarioString("straggler = 9\n").ok());       // No colon.
  EXPECT_FALSE(ParseScenarioString("straggler = a:2\n").ok());     // Bad GPU.
  EXPECT_FALSE(ParseScenarioString("straggler = 9:xfast\n").ok()); // Bad rate.
  EXPECT_FALSE(ParseScenarioString("straggler = 9:two\n").ok());   // Bad level.
  // Semantic problems (out-of-range GPU, level 99) parse fine; lint
  // catches them.
  Result<ScenarioSpec> semantic = ParseScenarioString("straggler = 999:99\n");
  ASSERT_TRUE(semantic.ok()) << semantic.status().ToString();
  EXPECT_EQ(semantic->stragglers[0].gpu, 999);
}

TEST(ScenarioParseTest, LoadScenarioFileNotFound) {
  Result<ScenarioSpec> missing = LoadScenarioFile("/nonexistent.scenario");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(ScenarioResolveTest, ResolvesModelClusterTraceOverlay) {
  ScenarioSpec spec;
  spec.model = "70b";
  spec.nodes = 8;
  spec.steps = 3;
  spec.net_model = "flow";
  spec.phases = {"normal", "s3"};
  StragglerEntry level_entry, rate_entry;
  level_entry.gpu = 9;
  level_entry.level = 2;
  rate_entry.gpu = 17;
  rate_entry.is_rate = true;
  rate_entry.rate = 2.5;
  spec.stragglers = {level_entry, rate_entry};

  Result<ResolvedScenario> resolved = ResolveScenario(spec);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_EQ(resolved->cluster.num_gpus(), 64);
  EXPECT_EQ(resolved->net_model, net::NetModel::kFlow);
  ASSERT_EQ(resolved->trace.size(), 2u);
  EXPECT_EQ(resolved->trace[0].id, straggler::SituationId::kNormal);
  EXPECT_EQ(resolved->trace[1].id, straggler::SituationId::kS3);
  EXPECT_EQ(resolved->trace[1].steps, 3);
  EXPECT_TRUE(resolved->has_overlay);
  EXPECT_DOUBLE_EQ(resolved->overlay.rate(9), straggler::RateForLevel(2));
  EXPECT_DOUBLE_EQ(resolved->overlay.rate(17), 2.5);
  EXPECT_DOUBLE_EQ(resolved->overlay.rate(0), 1.0);
}

TEST(ScenarioResolveTest, RejectsSemanticViolations) {
  ScenarioSpec unknown_model;
  unknown_model.model = "13b";
  EXPECT_FALSE(ResolveScenario(unknown_model).ok());

  ScenarioSpec bad_phase;
  bad_phase.phases = {"s9"};
  EXPECT_FALSE(ResolveScenario(bad_phase).ok());

  ScenarioSpec bad_gpu;
  StragglerEntry entry;
  entry.gpu = 99;  // 4 x 8 = 32 GPUs.
  bad_gpu.stragglers = {entry};
  EXPECT_FALSE(ResolveScenario(bad_gpu).ok());

  ScenarioSpec bad_shape;
  bad_shape.nodes = 0;
  EXPECT_FALSE(ResolveScenario(bad_shape).ok());

  ScenarioSpec bad_net;
  bad_net.net_model = "carrier-pigeon";
  EXPECT_FALSE(ResolveScenario(bad_net).ok());
}

TEST(ScenarioResolveTest, NoOverlayWithoutStragglers) {
  Result<ResolvedScenario> resolved = ResolveScenario(ScenarioSpec());
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_FALSE(resolved->has_overlay);
  EXPECT_TRUE(resolved->trace.empty());
}

TEST(ScenarioParseTest, CrlfLineEndings) {
  Result<ScenarioSpec> spec = ParseScenarioString(
      "model = tiny\r\nnodes = 2\r\nstraggler = 3:2\r\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->model, "tiny");
  EXPECT_EQ(spec->nodes, 2);
  ASSERT_EQ(spec->stragglers.size(), 1u);
  EXPECT_EQ(spec->stragglers[0].gpu, 3);
  EXPECT_EQ(spec->stragglers[0].level, 2);
}

TEST(ScenarioParseTest, TrailingWhitespaceAndComments) {
  Result<ScenarioSpec> spec = ParseScenarioString(
      "model = tiny   \t\n"
      "nodes = 2 # two nodes\n"
      "batch = 8\t# tab then comment\r\n"
      "straggler = 1:x2.5   # rate comment\n"
      "   \t \n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->model, "tiny");
  EXPECT_EQ(spec->nodes, 2);
  EXPECT_EQ(spec->batch, 8);
  ASSERT_EQ(spec->stragglers.size(), 1u);
  EXPECT_TRUE(spec->stragglers[0].is_rate);
  EXPECT_DOUBLE_EQ(spec->stragglers[0].rate, 2.5);
}

TEST(ScenarioParseTest, Utf8ByteOrderMark) {
  Result<ScenarioSpec> spec =
      ParseScenarioString("\xEF\xBB\xBFmodel = 70b\nnodes = 8\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->model, "70b");
  EXPECT_EQ(spec->nodes, 8);
}

TEST(ScenarioParseTest, BomOnlyInputIsEmpty) {
  Result<ScenarioSpec> spec = ParseScenarioString("\xEF\xBB\xBF");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->model, "32b");
}

// Fields that must survive Serialize -> Parse unchanged (everything except
// `source` and the per-entry line numbers, which describe provenance).
void ExpectRoundTrips(const ScenarioSpec& spec) {
  const std::string text = SerializeScenario(spec);
  Result<ScenarioSpec> back = ParseScenarioString(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n" << text;
  EXPECT_EQ(back->model, spec.model);
  EXPECT_EQ(back->nodes, spec.nodes);
  EXPECT_EQ(back->gpus_per_node, spec.gpus_per_node);
  EXPECT_EQ(back->batch, spec.batch);
  EXPECT_EQ(back->steps, spec.steps);
  EXPECT_EQ(back->seed, spec.seed);
  EXPECT_EQ(back->net_model, spec.net_model);
  EXPECT_EQ(back->phases, spec.phases);
  ASSERT_EQ(back->stragglers.size(), spec.stragglers.size());
  for (size_t i = 0; i < spec.stragglers.size(); ++i) {
    EXPECT_EQ(back->stragglers[i].gpu, spec.stragglers[i].gpu);
    EXPECT_EQ(back->stragglers[i].is_rate, spec.stragglers[i].is_rate);
    if (spec.stragglers[i].is_rate) {
      EXPECT_EQ(back->stragglers[i].rate, spec.stragglers[i].rate);
    } else {
      EXPECT_EQ(back->stragglers[i].level, spec.stragglers[i].level);
    }
  }
  EXPECT_EQ(back->dynamic.enabled, spec.dynamic.enabled);
  if (spec.dynamic.enabled) {
    EXPECT_EQ(back->dynamic.iterations, spec.dynamic.iterations);
    EXPECT_EQ(back->dynamic.straggle_rate, spec.dynamic.straggle_rate);
    EXPECT_EQ(back->dynamic.fail_rate, spec.dynamic.fail_rate);
    EXPECT_EQ(back->dynamic.node_fail_rate, spec.dynamic.node_fail_rate);
    EXPECT_EQ(back->dynamic.recover_iters, spec.dynamic.recover_iters);
    EXPECT_EQ(back->dynamic.flap_prob, spec.dynamic.flap_prob);
    EXPECT_EQ(back->dynamic.flap_period, spec.dynamic.flap_period);
    EXPECT_EQ(back->dynamic.diurnal_amplitude,
              spec.dynamic.diurnal_amplitude);
    EXPECT_EQ(back->dynamic.diurnal_period, spec.dynamic.diurnal_period);
    EXPECT_EQ(back->dynamic.max_level, spec.dynamic.max_level);
    EXPECT_EQ(back->dynamic.seed, spec.dynamic.seed);
  }
}

TEST(ScenarioSerializeTest, RoundTripsDefaults) {
  ExpectRoundTrips(ScenarioSpec());
}

TEST(ScenarioSerializeTest, RoundTripsEveryField) {
  ScenarioSpec spec;
  spec.model = "70b";
  spec.nodes = 8;
  spec.gpus_per_node = 4;
  spec.batch = 1024;
  spec.steps = 2;
  spec.seed = 123456789012345ULL;
  spec.net_model = "flow";
  spec.phases = {"normal", "s3", "normal"};
  StragglerEntry level;
  level.gpu = 9;
  level.level = 8;
  StragglerEntry rate;
  rate.gpu = 17;
  rate.rate = 2.5000000000000004;  // Needs all 17 significant digits.
  rate.is_rate = true;
  spec.stragglers = {level, rate};
  ExpectRoundTrips(spec);
}

TEST(ScenarioSerializeTest, RoundTripsFabricFields) {
  ScenarioSpec spec;
  spec.fabric = "fat-tree";
  spec.nodes = 8;
  spec.nodes_per_pod = 2;
  spec.oversubscription = 4.0;
  ExpectRoundTrips(spec);
  ScenarioSpec rail;
  rail.fabric = "rail";
  rail.oversubscription = 2.0;
  ExpectRoundTrips(rail);
}

TEST(ScenarioResolveTest, ResolvesHierarchicalFabrics) {
  ScenarioSpec spec;
  spec.nodes = 8;
  spec.fabric = "fat-tree";
  spec.nodes_per_pod = 4;
  spec.oversubscription = 2.0;
  Result<ResolvedScenario> resolved = ResolveScenario(spec);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_EQ(resolved->cluster.fabric().kind,
            topo::FabricSpec::Kind::kFatTree);
  EXPECT_EQ(resolved->cluster.num_pods(), 2);
  EXPECT_DOUBLE_EQ(resolved->cluster.fabric().oversubscription, 2.0);

  ScenarioSpec bad_kind;
  bad_kind.fabric = "torus";
  EXPECT_FALSE(ResolveScenario(bad_kind).ok());

  ScenarioSpec bad_pod;
  bad_pod.nodes = 4;
  bad_pod.fabric = "fat-tree";
  bad_pod.nodes_per_pod = 3;  // Does not divide 4 nodes.
  EXPECT_FALSE(ResolveScenario(bad_pod).ok());

  ScenarioSpec bad_oversub;
  bad_oversub.fabric = "rail";
  bad_oversub.oversubscription = 0.5;
  EXPECT_FALSE(ResolveScenario(bad_oversub).ok());

  // On a flat fabric the extra fields are ignored, not fatal (the lint
  // pass warns about them).
  ScenarioSpec flat;
  flat.fabric = "flat";
  flat.nodes_per_pod = 2;
  flat.oversubscription = 4.0;
  Result<ResolvedScenario> flat_resolved = ResolveScenario(flat);
  ASSERT_TRUE(flat_resolved.ok()) << flat_resolved.status().ToString();
  EXPECT_EQ(flat_resolved->cluster.fabric().kind,
            topo::FabricSpec::Kind::kFlat);
}

TEST(ScenarioParseTest, DynamicBlockSyntax) {
  Result<ScenarioSpec> spec = ParseScenarioString(
      "dynamic = { iterations=500 straggle_rate=0.02 fail_rate=0.004 "
      "node_fail_rate=0.001 recover_iters=80 flap_prob=0.3 flap_period=25 "
      "diurnal_amplitude=0.8 diurnal_period=200 max_level=4 seed=7 }\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_TRUE(spec->dynamic.enabled);
  EXPECT_EQ(spec->dynamic.iterations, 500);
  EXPECT_DOUBLE_EQ(spec->dynamic.straggle_rate, 0.02);
  EXPECT_DOUBLE_EQ(spec->dynamic.fail_rate, 0.004);
  EXPECT_DOUBLE_EQ(spec->dynamic.node_fail_rate, 0.001);
  EXPECT_EQ(spec->dynamic.recover_iters, 80);
  EXPECT_DOUBLE_EQ(spec->dynamic.flap_prob, 0.3);
  EXPECT_EQ(spec->dynamic.flap_period, 25);
  EXPECT_DOUBLE_EQ(spec->dynamic.diurnal_amplitude, 0.8);
  EXPECT_EQ(spec->dynamic.diurnal_period, 200);
  EXPECT_EQ(spec->dynamic.max_level, 4);
  EXPECT_EQ(spec->dynamic.seed, 7u);
  EXPECT_EQ(spec->dynamic.line, 1);

  // A bare block takes every default and still enables the mode; a
  // trailing comment is stripped like on any other line.
  Result<ScenarioSpec> bare =
      ParseScenarioString("dynamic = { }  # defaults\n");
  ASSERT_TRUE(bare.ok()) << bare.status().ToString();
  EXPECT_TRUE(bare->dynamic.enabled);
  EXPECT_EQ(bare->dynamic.iterations, 2000);
  EXPECT_FALSE(ParseScenarioString("dynamic = { iterations }\n").ok());
  EXPECT_FALSE(ParseScenarioString("dynamic = { walrus=1 }\n").ok());
  EXPECT_FALSE(ParseScenarioString("dynamic = { iterations=x }\n").ok());
  EXPECT_FALSE(ParseScenarioString("dynamic = iterations=5\n").ok());
  // Errors name the line of the dynamic block.
  Result<ScenarioSpec> err =
      ParseScenarioString("model = 32b\ndynamic = { walrus=1 }\n");
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.status().message().find("line 2"), std::string::npos);
}

TEST(ScenarioSerializeTest, RoundTripsDynamicFields) {
  ScenarioSpec spec;
  spec.dynamic.enabled = true;
  spec.dynamic.iterations = 1234;
  spec.dynamic.straggle_rate = 0.012300000000000004;  // All 17 digits.
  spec.dynamic.fail_rate = 0.004;
  spec.dynamic.node_fail_rate = 0.0005;
  spec.dynamic.recover_iters = 77;
  spec.dynamic.flap_prob = 0.25;
  spec.dynamic.flap_period = 33;
  spec.dynamic.diurnal_amplitude = 0.9;
  spec.dynamic.diurnal_period = 444;
  spec.dynamic.max_level = 5;
  spec.dynamic.seed = 987654321ULL;
  ExpectRoundTrips(spec);
  // Disabled dynamic serializes to nothing.
  EXPECT_EQ(SerializeScenario(ScenarioSpec()).find("dynamic"),
            std::string::npos);
}

TEST(ScenarioSerializeTest, SerializedTextIsStable) {
  // The fuzzer hashes reports containing serialized scenarios; the
  // rendering must be canonical.
  ScenarioSpec spec;
  spec.stragglers.emplace_back();
  EXPECT_EQ(SerializeScenario(spec), SerializeScenario(spec));
  EXPECT_NE(SerializeScenario(spec).find("straggler = 0:0"),
            std::string::npos);
}

TEST(ScenarioNameTest, ModelAndPhaseLookups) {
  EXPECT_TRUE(ModelSpecByName("32b").ok());
  EXPECT_TRUE(ModelSpecByName("70b").ok());
  EXPECT_TRUE(ModelSpecByName("110b").ok());
  EXPECT_TRUE(ModelSpecByName("tiny").ok());
  EXPECT_FALSE(ModelSpecByName("13b").ok());
  EXPECT_TRUE(SituationIdByName("normal").ok());
  for (int k = 1; k <= 6; ++k) {
    EXPECT_TRUE(SituationIdByName("s" + std::to_string(k)).ok());
  }
  EXPECT_FALSE(SituationIdByName("s7").ok());
  EXPECT_FALSE(SituationIdByName("S3").ok());  // Names are lowercase.
}

}  // namespace
}  // namespace scenario
}  // namespace malleus
