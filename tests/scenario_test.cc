// Tests for malleus::scenario: the key=value scenario-file parser (syntax
// only, line-numbered errors) and resolution against the library types.

#include <gtest/gtest.h>

#include <string>

#include "net/fabric.h"
#include "scenario/scenario.h"
#include "straggler/situation.h"

namespace malleus {
namespace scenario {
namespace {

TEST(ScenarioParseTest, DefaultsWhenEmpty) {
  Result<ScenarioSpec> spec = ParseScenarioString("");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->model, "32b");
  EXPECT_EQ(spec->nodes, 4);
  EXPECT_EQ(spec->gpus_per_node, 8);
  EXPECT_EQ(spec->batch, 64);
  EXPECT_EQ(spec->steps, 6);
  EXPECT_EQ(spec->seed, 42u);
  EXPECT_TRUE(spec->net_model.empty());
  EXPECT_TRUE(spec->phases.empty());
  EXPECT_TRUE(spec->stragglers.empty());
}

TEST(ScenarioParseTest, FullFile) {
  const char* text =
      "# A comment line.\n"
      "model = 70b\n"
      "nodes = 8\n"
      "gpus_per_node = 8\n"
      "batch = 128   # trailing comment\n"
      "steps = 3\n"
      "seed = 7\n"
      "net_model = flow\n"
      "phase = normal\n"
      "phase = s3\n"
      "straggler = 9:2\n"
      "straggler = 17:x2.5\n";
  Result<ScenarioSpec> spec = ParseScenarioString(text);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->model, "70b");
  EXPECT_EQ(spec->nodes, 8);
  EXPECT_EQ(spec->batch, 128);
  EXPECT_EQ(spec->steps, 3);
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_EQ(spec->net_model, "flow");
  ASSERT_EQ(spec->phases.size(), 2u);
  EXPECT_EQ(spec->phases[0], "normal");
  EXPECT_EQ(spec->phases[1], "s3");
  ASSERT_EQ(spec->stragglers.size(), 2u);
  EXPECT_EQ(spec->stragglers[0].gpu, 9);
  EXPECT_FALSE(spec->stragglers[0].is_rate);
  EXPECT_EQ(spec->stragglers[0].level, 2);
  EXPECT_EQ(spec->stragglers[0].line, 11);
  EXPECT_EQ(spec->stragglers[1].gpu, 17);
  EXPECT_TRUE(spec->stragglers[1].is_rate);
  EXPECT_DOUBLE_EQ(spec->stragglers[1].rate, 2.5);
}

TEST(ScenarioParseTest, SyntaxErrorsNameTheLine) {
  // Line 2 has no '='.
  Result<ScenarioSpec> no_eq = ParseScenarioString("model = 32b\nbogus\n");
  ASSERT_FALSE(no_eq.ok());
  EXPECT_NE(no_eq.status().message().find("line 2"), std::string::npos)
      << no_eq.status().ToString();

  Result<ScenarioSpec> unknown = ParseScenarioString("\n\nwat = 3\n");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(unknown.status().message().find("unknown key: wat"),
            std::string::npos);

  Result<ScenarioSpec> empty_value = ParseScenarioString("model =\n");
  ASSERT_FALSE(empty_value.ok());
  EXPECT_NE(empty_value.status().message().find("empty value for model"),
            std::string::npos);

  Result<ScenarioSpec> bad_int = ParseScenarioString("nodes = four\n");
  ASSERT_FALSE(bad_int.ok());
  EXPECT_NE(bad_int.status().message().find("bad nodes"), std::string::npos);
}

TEST(ScenarioParseTest, StragglerSyntax) {
  EXPECT_FALSE(ParseScenarioString("straggler = 9\n").ok());       // No colon.
  EXPECT_FALSE(ParseScenarioString("straggler = a:2\n").ok());     // Bad GPU.
  EXPECT_FALSE(ParseScenarioString("straggler = 9:xfast\n").ok()); // Bad rate.
  EXPECT_FALSE(ParseScenarioString("straggler = 9:two\n").ok());   // Bad level.
  // Semantic problems (out-of-range GPU, level 99) parse fine; lint
  // catches them.
  Result<ScenarioSpec> semantic = ParseScenarioString("straggler = 999:99\n");
  ASSERT_TRUE(semantic.ok()) << semantic.status().ToString();
  EXPECT_EQ(semantic->stragglers[0].gpu, 999);
}

TEST(ScenarioParseTest, LoadScenarioFileNotFound) {
  Result<ScenarioSpec> missing = LoadScenarioFile("/nonexistent.scenario");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(ScenarioResolveTest, ResolvesModelClusterTraceOverlay) {
  ScenarioSpec spec;
  spec.model = "70b";
  spec.nodes = 8;
  spec.steps = 3;
  spec.net_model = "flow";
  spec.phases = {"normal", "s3"};
  StragglerEntry level_entry, rate_entry;
  level_entry.gpu = 9;
  level_entry.level = 2;
  rate_entry.gpu = 17;
  rate_entry.is_rate = true;
  rate_entry.rate = 2.5;
  spec.stragglers = {level_entry, rate_entry};

  Result<ResolvedScenario> resolved = ResolveScenario(spec);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_EQ(resolved->cluster.num_gpus(), 64);
  EXPECT_EQ(resolved->net_model, net::NetModel::kFlow);
  ASSERT_EQ(resolved->trace.size(), 2u);
  EXPECT_EQ(resolved->trace[0].id, straggler::SituationId::kNormal);
  EXPECT_EQ(resolved->trace[1].id, straggler::SituationId::kS3);
  EXPECT_EQ(resolved->trace[1].steps, 3);
  EXPECT_TRUE(resolved->has_overlay);
  EXPECT_DOUBLE_EQ(resolved->overlay.rate(9), straggler::RateForLevel(2));
  EXPECT_DOUBLE_EQ(resolved->overlay.rate(17), 2.5);
  EXPECT_DOUBLE_EQ(resolved->overlay.rate(0), 1.0);
}

TEST(ScenarioResolveTest, RejectsSemanticViolations) {
  ScenarioSpec unknown_model;
  unknown_model.model = "13b";
  EXPECT_FALSE(ResolveScenario(unknown_model).ok());

  ScenarioSpec bad_phase;
  bad_phase.phases = {"s9"};
  EXPECT_FALSE(ResolveScenario(bad_phase).ok());

  ScenarioSpec bad_gpu;
  StragglerEntry entry;
  entry.gpu = 99;  // 4 x 8 = 32 GPUs.
  bad_gpu.stragglers = {entry};
  EXPECT_FALSE(ResolveScenario(bad_gpu).ok());

  ScenarioSpec bad_shape;
  bad_shape.nodes = 0;
  EXPECT_FALSE(ResolveScenario(bad_shape).ok());

  ScenarioSpec bad_net;
  bad_net.net_model = "carrier-pigeon";
  EXPECT_FALSE(ResolveScenario(bad_net).ok());
}

TEST(ScenarioResolveTest, NoOverlayWithoutStragglers) {
  Result<ResolvedScenario> resolved = ResolveScenario(ScenarioSpec());
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_FALSE(resolved->has_overlay);
  EXPECT_TRUE(resolved->trace.empty());
}

TEST(ScenarioNameTest, ModelAndPhaseLookups) {
  EXPECT_TRUE(ModelSpecByName("32b").ok());
  EXPECT_TRUE(ModelSpecByName("70b").ok());
  EXPECT_TRUE(ModelSpecByName("110b").ok());
  EXPECT_TRUE(ModelSpecByName("tiny").ok());
  EXPECT_FALSE(ModelSpecByName("13b").ok());
  EXPECT_TRUE(SituationIdByName("normal").ok());
  for (int k = 1; k <= 6; ++k) {
    EXPECT_TRUE(SituationIdByName("s" + std::to_string(k)).ok());
  }
  EXPECT_FALSE(SituationIdByName("s7").ok());
  EXPECT_FALSE(SituationIdByName("S3").ok());  // Names are lowercase.
}

}  // namespace
}  // namespace scenario
}  // namespace malleus
