// Tests for core/executor and core/engine: plan installation and migration
// accounting, the self-detecting re-planning loop, overlap accounting,
// failure recovery, and elastic re-inclusion.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "core/executor.h"
#include "core/planner.h"

namespace malleus {
namespace core {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  plan::ParallelPlan PlanFor(const straggler::Situation& s) {
    Planner planner(cluster_, cost_);
    Result<PlanResult> r = planner.Plan(s, 64);
    MALLEUS_CHECK_OK(r.status());
    return std::move(r->plan);
  }

  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(4);
  model::CostModel cost_{model::ModelSpec::Llama32B(), topo::GpuSpec()};
};

TEST_F(ExecutorTest, MigrateBeforeInstallFails) {
  Executor ex(cluster_, cost_);
  EXPECT_FALSE(ex.installed());
  Result<MigrationReport> r =
      ex.Migrate(PlanFor(straggler::Situation(cluster_.num_gpus())));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsFailedPrecondition());
}

TEST_F(ExecutorTest, InstallThenNoOpMigrate) {
  Executor ex(cluster_, cost_);
  const straggler::Situation healthy(cluster_.num_gpus());
  plan::ParallelPlan p = PlanFor(healthy);
  ASSERT_TRUE(ex.Install(p).ok());
  Result<MigrationReport> r = ex.Migrate(p);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->no_op);
  EXPECT_DOUBLE_EQ(r->seconds, 0.0);
}

TEST_F(ExecutorTest, MigrateToStragglerPlanCharges) {
  Executor ex(cluster_, cost_);
  const straggler::Situation healthy(cluster_.num_gpus());
  ASSERT_TRUE(ex.Install(PlanFor(healthy)).ok());
  straggler::Situation s(cluster_.num_gpus());
  s.SetLevel(0, 3);
  Result<MigrationReport> r = ex.Migrate(PlanFor(s));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->no_op);
  EXPECT_GT(r->bytes, 0.0);
  EXPECT_GT(r->seconds, 0.0);
  EXPECT_GT(r->num_transfers, 0);
}

TEST_F(ExecutorTest, InstallRejectsInvalidPlan) {
  Executor ex(cluster_, cost_);
  plan::ParallelPlan bad = PlanFor(straggler::Situation(cluster_.num_gpus()));
  bad.pipelines[0].num_microbatches += 1;
  EXPECT_FALSE(ex.Install(bad).ok());
}

class EngineTest : public ::testing::Test {
 protected:
  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(4);
  model::CostModel cost_{model::ModelSpec::Llama32B(), topo::GpuSpec()};
};

TEST_F(EngineTest, StepBeforeInitializeFails) {
  MalleusEngine engine(cluster_, cost_);
  straggler::Situation healthy(cluster_.num_gpus());
  EXPECT_FALSE(engine.Step(healthy).ok());
}

TEST_F(EngineTest, HealthySteadyStateDoesNotReplan) {
  MalleusEngine engine(cluster_, cost_);
  ASSERT_TRUE(engine.Initialize(64).ok());
  straggler::Situation healthy(cluster_.num_gpus());
  for (int i = 0; i < 5; ++i) {
    Result<StepReport> r = engine.Step(healthy);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_FALSE(r->replanned);
    EXPECT_DOUBLE_EQ(r->migration_seconds, 0.0);
  }
}

TEST_F(EngineTest, DetectsStragglerAndAdapts) {
  MalleusEngine engine(cluster_, cost_);
  ASSERT_TRUE(engine.Initialize(64).ok());
  straggler::Situation healthy(cluster_.num_gpus());
  double base = 0.0;
  for (int i = 0; i < 3; ++i) base = engine.Step(healthy)->step_seconds;

  straggler::Situation s(cluster_.num_gpus());
  s.SetLevel(0, 3);
  // First straggling step runs the stale plan and triggers re-planning.
  Result<StepReport> hit = engine.Step(s);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->replanned);
  EXPECT_GT(hit->step_seconds, 2.0 * base);
  // Subsequent steps run the adapted plan: far better than the stale plan.
  double adapted = 0.0;
  for (int i = 0; i < 3; ++i) adapted = engine.Step(s)->step_seconds;
  EXPECT_LT(adapted, 1.6 * base);
  // Adapted plan keeps the DP degree (footnote 2).
  EXPECT_EQ(engine.current_plan().dp_degree(),
            engine.profiler().Estimated().num_gpus() > 0
                ? engine.current_plan().dp_degree()
                : 0);
}

TEST_F(EngineTest, PlanningOverlappedWithTraining) {
  MalleusEngine engine(cluster_, cost_);
  ASSERT_TRUE(engine.Initialize(64).ok());
  straggler::Situation s(cluster_.num_gpus());
  s.SetLevel(0, 1);
  Result<StepReport> r = engine.Step(s);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->replanned);
  // Planning is fast here, so it hides entirely behind the step (S5.3).
  EXPECT_GT(r->planning_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r->planning_overflow_seconds, 0.0);
}

TEST_F(EngineTest, RecoversWhenStragglerDisappears) {
  MalleusEngine engine(cluster_, cost_);
  ASSERT_TRUE(engine.Initialize(64).ok());
  straggler::Situation healthy(cluster_.num_gpus());
  double base = 0.0;
  for (int i = 0; i < 3; ++i) base = engine.Step(healthy)->step_seconds;
  straggler::Situation s(cluster_.num_gpus());
  s.SetLevel(0, 8);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(engine.Step(s).ok());
  // Heavy straggler should be off the plan (standby).
  const auto active = engine.current_plan().ActiveGpus();
  EXPECT_EQ(std::count(active.begin(), active.end(), 0), 0);
  // Back to normal: the standby probe sees the recovery and the planner
  // re-includes GPU 0 within a couple of steps.
  double recovered = 0.0;
  for (int i = 0; i < 4; ++i) recovered = engine.Step(healthy)->step_seconds;
  const auto active2 = engine.current_plan().ActiveGpus();
  EXPECT_EQ(std::count(active2.begin(), active2.end(), 0), 1);
  EXPECT_NEAR(recovered, base, 0.1 * base);
}

TEST_F(EngineTest, FailureRecoveryViaCheckpoint) {
  MalleusEngine engine(cluster_, cost_);
  ASSERT_TRUE(engine.Initialize(64).ok());
  straggler::Situation failed(cluster_.num_gpus());
  failed.Fail(2);
  Result<StepReport> r = engine.Step(failed);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->recovery_seconds, 0.0);
  EXPECT_TRUE(r->replanned);
  const auto active = engine.current_plan().ActiveGpus();
  EXPECT_EQ(std::count(active.begin(), active.end(), 2), 0);
  // Training continues normally afterwards.
  Result<StepReport> next = engine.Step(failed);
  ASSERT_TRUE(next.ok());
  EXPECT_DOUBLE_EQ(next->recovery_seconds, 0.0);
}

TEST_F(EngineTest, InitializeWithUserPlan) {
  MalleusEngine engine(cluster_, cost_);
  Planner planner(cluster_, cost_);
  Result<PlanResult> p =
      planner.Plan(straggler::Situation(cluster_.num_gpus()), 64);
  ASSERT_TRUE(p.ok());
  const std::string sig = p->plan.Signature();
  ASSERT_TRUE(engine.InitializeWithPlan(std::move(p->plan)).ok());
  EXPECT_EQ(engine.current_plan().Signature(), sig);
  straggler::Situation healthy(cluster_.num_gpus());
  EXPECT_TRUE(engine.Step(healthy).ok());
}

}  // namespace
}  // namespace core
}  // namespace malleus
