// Tests for malleus::exec — the work-stealing thread pool, WaitGroup and
// ParallelFor that back the planner's concurrent candidate sweep.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"

namespace malleus {
namespace exec {
namespace {

TEST(WaitGroupTest, WaitReturnsImmediatelyAtZero) {
  WaitGroup wg;
  wg.Wait();  // Must not block.
}

TEST(WaitGroupTest, WaitBlocksUntilAllDone) {
  WaitGroup wg;
  wg.Add(2);
  std::atomic<int> done{0};
  std::thread t([&] {
    done.fetch_add(1);
    wg.Done();
    done.fetch_add(1);
    wg.Done();
  });
  wg.Wait();
  EXPECT_EQ(done.load(), 2);
  t.join();
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  constexpr int kTasks = 1000;
  std::atomic<int> count{0};
  WaitGroup wg;
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);
    wg.Add(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&] {
        count.fetch_add(1, std::memory_order_relaxed);
        wg.Done();
      });
    }
    wg.Wait();
  }
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  constexpr int kTasks = 200;
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // No Wait: the destructor must run everything before joining.
  }
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPoolTest, SingleThreadPoolStillRunsTasks) {
  std::atomic<int> count{0};
  WaitGroup wg;
  ThreadPool pool(1);
  wg.Add(50);
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] {
      count.fetch_add(1, std::memory_order_relaxed);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, NestedSubmissionCompletes) {
  // Tasks that submit more tasks (the recursive-search shape the LIFO own
  // deque is designed for) must all run without deadlocking.
  std::atomic<int> count{0};
  WaitGroup wg;
  ThreadPool pool(3);
  constexpr int kRoots = 20, kChildren = 10;
  wg.Add(kRoots * (1 + kChildren));
  for (int i = 0; i < kRoots; ++i) {
    pool.Submit([&] {
      for (int j = 0; j < kChildren; ++j) {
        pool.Submit([&] {
          count.fetch_add(1, std::memory_order_relaxed);
          wg.Done();
        });
      }
      count.fetch_add(1, std::memory_order_relaxed);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(count.load(), kRoots * (1 + kChildren));
}

TEST(ParallelForTest, NullPoolRunsInlineInOrder) {
  std::vector<int64_t> order;
  // detlint:allow(conc.shared-mutable-capture null pool runs inline on the calling thread by contract)
  ParallelFor(nullptr, 5, [&](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr int64_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ThreadPool pool(4);
  ParallelFor(&pool, kN, [&](int64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SingleIterationRunsInline) {
  ThreadPool pool(2);
  std::thread::id body_thread;
  // detlint:allow(conc.shared-mutable-capture n<=1 runs inline by contract; the test asserts exactly that)
  ParallelFor(&pool, 1, [&](int64_t) { body_thread = std::this_thread::get_id(); });
  EXPECT_EQ(body_thread, std::this_thread::get_id());
}

TEST(ParallelForTest, ZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  int calls = 0;
  // detlint:allow(conc.shared-mutable-capture zero iterations: the body never runs at all)
  ParallelFor(&pool, 0, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(DefaultPlannerThreadsTest, HonorsEnvironmentVariable) {
  ASSERT_EQ(setenv("MALLEUS_PLANNER_THREADS", "3", 1), 0);
  EXPECT_EQ(DefaultPlannerThreads(), 3);
  ASSERT_EQ(setenv("MALLEUS_PLANNER_THREADS", "0", 1), 0);
  EXPECT_GE(DefaultPlannerThreads(), 1);  // Invalid -> hardware fallback.
  ASSERT_EQ(setenv("MALLEUS_PLANNER_THREADS", "junk", 1), 0);
  EXPECT_GE(DefaultPlannerThreads(), 1);
  ASSERT_EQ(unsetenv("MALLEUS_PLANNER_THREADS"), 0);
  EXPECT_GE(DefaultPlannerThreads(), 1);
}

}  // namespace
}  // namespace exec
}  // namespace malleus
