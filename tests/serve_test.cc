// Tests for src/serve: the JSON parser, the versioned JSONL protocol,
// and the planner-as-a-service server — typed error responses, deadline
// admission, queue bounds, byte-identical responses across worker counts,
// cache persistence across restarts, and the TCP transport.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace malleus {
namespace serve {
namespace {

// ---------- JSON ----------

TEST(JsonTest, ParsesScalarsAndContainers) {
  Result<JsonValue> v = JsonValue::Parse(
      "{\"a\":1,\"b\":-2.5e2,\"c\":true,\"d\":null,"
      "\"e\":[1,\"two\",{\"f\":false}]}");
  MALLEUS_CHECK_OK(v.status());
  ASSERT_TRUE(v->is_object());
  EXPECT_TRUE(v->Find("a")->IsInt64());
  EXPECT_EQ(v->Find("a")->Int64(), 1);
  EXPECT_DOUBLE_EQ(v->Find("b")->number(), -250.0);
  EXPECT_TRUE(v->Find("c")->bool_value());
  EXPECT_TRUE(v->Find("d")->is_null());
  const JsonValue* e = v->Find("e");
  ASSERT_TRUE(e->is_array());
  ASSERT_EQ(e->array().size(), 3u);
  EXPECT_EQ(e->array()[1].string_value(), "two");
  EXPECT_FALSE(e->array()[2].Find("f")->bool_value());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, DecodesEscapesIncludingSurrogatePairs) {
  Result<JsonValue> v = JsonValue::Parse(
      "\"a\\n\\t\\\"\\\\\\/\\u0041\\u00e9\\ud83d\\ude00\"");
  MALLEUS_CHECK_OK(v.status());
  // A = A, é = é (2 UTF-8 bytes), surrogate pair = 😀 (4 bytes).
  EXPECT_EQ(v->string_value(), "a\n\t\"\\/A\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(JsonTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",
      "{",
      "[1,]",
      "{\"a\":}",
      "tru",
      "01",
      "1.",
      "\"unterminated",
      "\"bad\\q\"",
      "{\"a\":1} trailing",
      "nan",
  };
  for (const char* text : bad) {
    Result<JsonValue> v = JsonValue::Parse(text);
    EXPECT_FALSE(v.ok()) << "accepted: " << text;
    EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

TEST(JsonTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

// ---------- protocol ----------

TEST(ProtocolTest, ParsesFullRequest) {
  int64_t id = 0;
  Result<Request> r = ParseRequest(
      "{\"v\":1,\"id\":42,\"method\":\"plan\","
      "\"params\":{\"cluster\":\"c\"},\"deadline_ms\":250}",
      &id);
  MALLEUS_CHECK_OK(r.status());
  EXPECT_EQ(id, 42);
  EXPECT_EQ(r->id, 42);
  EXPECT_EQ(r->method, "plan");
  EXPECT_TRUE(r->has_deadline);
  EXPECT_EQ(r->deadline_ms, 250);
  EXPECT_EQ(r->params.Find("cluster")->string_value(), "c");
}

TEST(ProtocolTest, ParamsAndDeadlineAreOptional) {
  int64_t id = 0;
  Result<Request> r =
      ParseRequest("{\"v\":1,\"id\":1,\"method\":\"status\"}", &id);
  MALLEUS_CHECK_OK(r.status());
  EXPECT_TRUE(r->params.is_object());
  EXPECT_FALSE(r->has_deadline);
}

TEST(ProtocolTest, RejectsBadRequestsAndRecoversId) {
  int64_t id = 0;
  // Wrong protocol version, but the id is still recovered for the error
  // response.
  Result<Request> r =
      ParseRequest("{\"v\":2,\"id\":9,\"method\":\"plan\"}", &id);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(id, 9);

  id = 0;
  EXPECT_FALSE(ParseRequest("{\"v\":1,\"method\":\"plan\"}", &id).ok());
  EXPECT_EQ(id, 0);  // No id field: errors echo id 0.
  EXPECT_FALSE(ParseRequest("{\"v\":1,\"id\":1}", &id).ok());
  EXPECT_FALSE(
      ParseRequest("{\"v\":1,\"id\":1,\"method\":\"m\",\"params\":3}", &id)
          .ok());
  EXPECT_FALSE(ParseRequest("[]", &id).ok());
}

TEST(ProtocolTest, RequestLineRoundTrips) {
  int64_t id = 0;
  Result<Request> r =
      ParseRequest(RequestLine(5, "lint", "{\"x\":1}", 100), &id);
  MALLEUS_CHECK_OK(r.status());
  EXPECT_EQ(r->id, 5);
  EXPECT_EQ(r->method, "lint");
  EXPECT_EQ(r->deadline_ms, 100);
}

TEST(ProtocolTest, WireErrorCodesAreDistinctForCommonStatuses) {
  EXPECT_STREQ(WireErrorCode(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(WireErrorCode(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(WireErrorCode(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(WireErrorCode(StatusCode::kNotImplemented),
               "NOT_IMPLEMENTED");
  EXPECT_STREQ(WireErrorCode(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
}

// ---------- server ----------

constexpr char kRegisterLine[] =
    "{\"v\":1,\"id\":1,\"method\":\"register\",\"params\":{\"name\":\"c1\","
    "\"scenario\":\"model = tiny\\nnodes = 1\\nbatch = 8\\nphase = s1\"}}";
constexpr char kPlanLine[] =
    "{\"v\":1,\"id\":2,\"method\":\"plan\","
    "\"params\":{\"cluster\":\"c1\",\"situation\":\"s1\"}}";
constexpr char kReplanLine[] =
    "{\"v\":1,\"id\":3,\"method\":\"replan\","
    "\"params\":{\"cluster\":\"c1\",\"situation\":\"s2\"}}";

ServerOptions SmallOptions() {
  ServerOptions options;
  options.num_workers = 2;
  options.planner_threads = 1;
  return options;
}

// The error code of a non-ok response line, or "" for an ok response.
std::string ErrorCodeOf(const std::string& response) {
  Result<JsonValue> doc = JsonValue::Parse(response);
  MALLEUS_CHECK_OK(doc.status());
  if (doc->Find("ok")->bool_value()) return "";
  return doc->Find("error")->Find("code")->string_value();
}

TEST(ServerTest, RegisterPlanReplanFlow) {
  Server server(SmallOptions());
  MALLEUS_CHECK_OK(server.Start());
  EXPECT_EQ(ErrorCodeOf(server.Handle(kRegisterLine)), "");

  const std::string plan = server.Handle(kPlanLine);
  EXPECT_EQ(ErrorCodeOf(plan), "");
  Result<JsonValue> doc = JsonValue::Parse(plan);
  MALLEUS_CHECK_OK(doc.status());
  EXPECT_EQ(doc->Find("id")->Int64(), 2);
  const JsonValue* result = doc->Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_FALSE(result->Find("signature")->string_value().empty());
  EXPECT_GT(result->Find("dp")->Int64(), 0);
  EXPECT_TRUE(result->Find("plan_changed")->bool_value());

  // Re-planning for a different situation keeps the pinned DP degree.
  const std::string replan = server.Handle(kReplanLine);
  EXPECT_EQ(ErrorCodeOf(replan), "");
  Result<JsonValue> rdoc = JsonValue::Parse(replan);
  EXPECT_EQ(rdoc->Find("result")->Find("dp")->Int64(),
            doc->Find("result")->Find("dp")->Int64());

  // Registering the same scenario under a new name shares the session.
  const std::string alias = server.Handle(
      "{\"v\":1,\"id\":4,\"method\":\"register\",\"params\":{"
      "\"name\":\"c2\","
      "\"scenario\":\"model = tiny\\nnodes = 1\\nbatch = 8\\nphase = "
      "s1\"}}");
  EXPECT_EQ(ErrorCodeOf(alias), "");
  EXPECT_NE(alias.find("\"shared\":true"), std::string::npos);
  MALLEUS_CHECK_OK(server.Shutdown());
}

TEST(ServerTest, TypedErrorResponses) {
  Server server(SmallOptions());
  MALLEUS_CHECK_OK(server.Start());

  // Unparsable line: typed error echoing id 0, the daemon keeps serving.
  std::string r = server.Handle("this is not json");
  EXPECT_EQ(ErrorCodeOf(r), "INVALID_ARGUMENT");
  EXPECT_NE(r.find("\"id\":0"), std::string::npos);

  EXPECT_EQ(ErrorCodeOf(server.Handle(
                "{\"v\":7,\"id\":1,\"method\":\"status\"}")),
            "FAILED_PRECONDITION");
  EXPECT_EQ(ErrorCodeOf(server.Handle(
                "{\"v\":1,\"id\":1,\"method\":\"frobnicate\"}")),
            "NOT_IMPLEMENTED");
  EXPECT_EQ(ErrorCodeOf(server.Handle(
                "{\"v\":1,\"id\":1,\"method\":\"plan\","
                "\"params\":{\"cluster\":\"nope\"}}")),
            "NOT_FOUND");
  EXPECT_EQ(ErrorCodeOf(server.Handle(
                "{\"v\":1,\"id\":1,\"method\":\"register\",\"params\":{"
                "\"name\":\"bad\",\"scenario\":\"model = tiny\\nnodes = "
                "0\\nbatch = 8\"}}")),
            "INVALID_ARGUMENT");

  // Replan without a prior plan (and no explicit dp) is a precondition
  // failure, not a crash: there is no DP degree to pin.
  EXPECT_EQ(ErrorCodeOf(server.Handle(kRegisterLine)), "");
  EXPECT_EQ(ErrorCodeOf(server.Handle(kReplanLine)), "FAILED_PRECONDITION");

  // After all of the above the server still answers normally.
  EXPECT_EQ(ErrorCodeOf(server.Handle(kPlanLine)), "");
  MALLEUS_CHECK_OK(server.Shutdown());
}

TEST(ServerTest, ExpiredDeadlineIsDeadlineExceeded) {
  Server server(SmallOptions());
  MALLEUS_CHECK_OK(server.Start());
  EXPECT_EQ(ErrorCodeOf(server.Handle(kRegisterLine)), "");
  // deadline_ms 0 expires at admission; the request is never planned.
  const std::string r = server.Handle(
      "{\"v\":1,\"id\":5,\"method\":\"plan\","
      "\"params\":{\"cluster\":\"c1\",\"situation\":\"s1\"},"
      "\"deadline_ms\":0}");
  EXPECT_EQ(ErrorCodeOf(r), kDeadlineExceeded);
  // A generous deadline is honored.
  EXPECT_EQ(ErrorCodeOf(server.Handle(
                "{\"v\":1,\"id\":6,\"method\":\"plan\","
                "\"params\":{\"cluster\":\"c1\",\"situation\":\"s1\"},"
                "\"deadline_ms\":60000}")),
            "");
  MALLEUS_CHECK_OK(server.Shutdown());
}

TEST(ServerTest, SubmitBeforeStartIsUnavailable) {
  Server server(SmallOptions());
  std::string response;
  server.Submit(kPlanLine, [&](std::string r) { response = std::move(r); });
  EXPECT_EQ(ErrorCodeOf(response), "UNAVAILABLE");
}

TEST(ServerTest, FullQueueRejectsWithResourceExhausted) {
  ServerOptions options = SmallOptions();
  options.num_workers = 1;
  options.max_queue = 1;
  options.max_batch = 1;
  Server server(options);
  MALLEUS_CHECK_OK(server.Start());
  EXPECT_EQ(ErrorCodeOf(server.Handle(kRegisterLine)), "");
  EXPECT_EQ(ErrorCodeOf(server.Handle(kPlanLine)), "");

  // Flood a single-worker server whose queue holds one request: the
  // submission loop far outruns the ~sub-millisecond warm re-plans, so
  // some requests must bounce with RESOURCE_EXHAUSTED and every submitted
  // request still gets exactly one response.
  constexpr int kFlood = 500;
  std::mutex mu;
  std::atomic<int> responded{0};
  int ok = 0, rejected = 0, other = 0;
  for (int i = 0; i < kFlood; ++i) {
    server.Submit(kPlanLine, [&](std::string r) {
      const std::string code = ErrorCodeOf(r);
      std::lock_guard<std::mutex> lock(mu);
      if (code.empty()) {
        ++ok;
      } else if (code == "RESOURCE_EXHAUSTED") {
        ++rejected;
      } else {
        ++other;
      }
      responded.fetch_add(1);
    });
  }
  server.Drain();
  EXPECT_EQ(responded.load(), kFlood);
  EXPECT_EQ(other, 0);
  EXPECT_GT(ok, 0);
  EXPECT_GT(rejected, 0);
  MALLEUS_CHECK_OK(server.Shutdown());
}

TEST(ServerTest, ResponsesAreByteIdenticalAcrossWorkerCounts) {
  std::vector<std::string> responses[2];
  const int worker_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    ServerOptions options = SmallOptions();
    options.num_workers = worker_counts[run];
    Server server(options);
    MALLEUS_CHECK_OK(server.Start());
    EXPECT_EQ(ErrorCodeOf(server.Handle(kRegisterLine)), "");
    EXPECT_EQ(ErrorCodeOf(server.Handle(kPlanLine)), "");
    for (int i = 0; i < 8; ++i) {
      responses[run].push_back(server.Handle(kReplanLine));
    }
    MALLEUS_CHECK_OK(server.Shutdown());
  }
  ASSERT_EQ(responses[0].size(), responses[1].size());
  for (size_t i = 0; i < responses[0].size(); ++i) {
    EXPECT_EQ(responses[0][i], responses[1][i]) << "response " << i;
  }
}

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return StrFormat("%s/%s.%d", dir != nullptr ? dir : "/tmp", name,
                   static_cast<int>(::getpid()));
}

TEST(ServerTest, CachePersistsAcrossRestart) {
  const std::string path = TempPath("serve_test_cache");
  std::remove(path.c_str());

  ServerOptions options = SmallOptions();
  options.cache_save_path = path;
  {
    Server server(options);
    MALLEUS_CHECK_OK(server.Start());
    EXPECT_EQ(ErrorCodeOf(server.Handle(kRegisterLine)), "");
    EXPECT_EQ(ErrorCodeOf(server.Handle(kPlanLine)), "");
    MALLEUS_CHECK_OK(server.Shutdown());  // Persists the cache.
  }
  {
    ServerOptions warm = SmallOptions();
    warm.cache_load_path = path;
    Server server(warm);
    MALLEUS_CHECK_OK(server.Start());
    const std::string reg = server.Handle(kRegisterLine);
    EXPECT_EQ(ErrorCodeOf(reg), "");
    EXPECT_NE(reg.find("\"warm\":true"), std::string::npos) << reg;
    Result<JsonValue> doc = JsonValue::Parse(reg);
    EXPECT_GT(doc->Find("result")->Find("warm_entries")->Int64(), 0);
    MALLEUS_CHECK_OK(server.Shutdown());
  }
  std::remove(path.c_str());
}

TEST(ServerTest, CorruptCacheFileDowngradesToColdStart) {
  const std::string path = TempPath("serve_test_corrupt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("MLSCACHE but then garbage follows", f);
  std::fclose(f);

  ServerOptions options = SmallOptions();
  options.cache_load_path = path;
  Server server(options);
  // Startup must succeed; the corrupt file costs warmth, not the daemon.
  MALLEUS_CHECK_OK(server.Start());
  const std::string reg = server.Handle(kRegisterLine);
  EXPECT_EQ(ErrorCodeOf(reg), "");
  EXPECT_NE(reg.find("\"warm\":false"), std::string::npos) << reg;
  EXPECT_EQ(ErrorCodeOf(server.Handle(kPlanLine)), "");
  MALLEUS_CHECK_OK(server.Shutdown());
  std::remove(path.c_str());
}

// ---------- TCP transport ----------

TEST(TcpTest, EndToEndOverLoopback) {
  Server server(SmallOptions());
  MALLEUS_CHECK_OK(server.Start());
  TcpServer tcp(&server);
  MALLEUS_CHECK_OK(tcp.Listen(0));  // Ephemeral port.
  ASSERT_GT(tcp.port(), 0);
  std::thread serving([&] { MALLEUS_CHECK_OK(tcp.Serve()); });

  {
    Result<std::unique_ptr<Client>> client =
        Client::ConnectTcp("127.0.0.1", tcp.port());
    MALLEUS_CHECK_OK(client.status());
    Result<JsonValue> reg = (*client)->Call(
        "register",
        "{\"name\":\"c1\",\"scenario\":\"model = tiny\\nnodes = 1\\nbatch "
        "= 8\\nphase = s1\"}");
    MALLEUS_CHECK_OK(reg.status());
    EXPECT_EQ(reg->Find("cluster")->string_value(), "c1");

    Result<JsonValue> plan =
        (*client)->Call("plan", "{\"cluster\":\"c1\",\"situation\":\"s1\"}");
    MALLEUS_CHECK_OK(plan.status());
    EXPECT_GT(plan->Find("dp")->Int64(), 0);

    // A wire error comes back as a Status carrying the mapped code.
    Result<JsonValue> missing =
        (*client)->Call("plan", "{\"cluster\":\"ghost\"}");
    EXPECT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

    Result<JsonValue> bye = (*client)->Call("shutdown", "{}");
    MALLEUS_CHECK_OK(bye.status());
  }
  serving.join();
  EXPECT_TRUE(server.shutdown_requested());
  MALLEUS_CHECK_OK(server.Shutdown());
}

}  // namespace
}  // namespace serve
}  // namespace malleus
