// Property tests of the paper's theorems against brute force on random
// small instances:
//   Theorem 1 - contiguous descending grouping is capacity-optimal
//               (covered in grouping_test; here we add unequal rates with
//               larger nodes),
//   Theorem 2 - the capacity ratio predicts the relaxed optimal times,
//   Theorem 3 - descending-rate stage order is never beaten by any
//               permutation (for equal-size groups),
//   Eq. (4)   - the exact division search matches brute-force enumeration.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "core/work_assignment.h"
#include "model/cost_model.h"
#include "plan/estimator.h"
#include "solver/division.h"
#include "solver/minmax.h"

namespace malleus {
namespace {

// Relaxed (continuous) optimal step time of a set of groups per Theorem 2:
// B/b * L * tau / sum(1/y). We verify the *ratio* prediction between two
// random group sets using the integer machinery with large totals (where
// integrality becomes negligible).
TEST(Theorem2Test, CapacityRatioPredictsOptimalTimes) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const int n1 = static_cast<int>(rng.UniformInt(2, 5));
    const int n2 = static_cast<int>(rng.UniformInt(2, 5));
    std::vector<double> y1, y2;
    double cap1 = 0.0, cap2 = 0.0;
    for (int i = 0; i < n1; ++i) {
      y1.push_back(rng.Uniform(0.3, 4.0));
      cap1 += 1.0 / y1.back();
    }
    for (int i = 0; i < n2; ++i) {
      y2.push_back(rng.Uniform(0.3, 4.0));
      cap2 += 1.0 / y2.back();
    }
    // Single pipeline with these stages; many layers approximate the
    // continuous relaxation. min max y_j l_j s.t. sum l_j = L.
    const int64_t L = 100000;
    Result<solver::BottleneckSolution> s1 = solver::SolveBottleneckAllocation(
        y1, std::vector<int64_t>(n1, -1), L);
    Result<solver::BottleneckSolution> s2 = solver::SolveBottleneckAllocation(
        y2, std::vector<int64_t>(n2, -1), L);
    ASSERT_TRUE(s1.ok());
    ASSERT_TRUE(s2.ok());
    // T'/T'' = cap''/cap' (Theorem 2).
    EXPECT_NEAR(s1->bottleneck / s2->bottleneck, cap2 / cap1, 0.01)
        << "trial " << trial;
  }
}

// Theorem 3: with equal-size groups, ordering stages by descending rate is
// at least as good as every other permutation of the same groups (the
// memory capacities of later stages are larger, so fast groups can absorb
// more layers there).
TEST(Theorem3Test, DescendingOrderIsOptimalAmongPermutations) {
  const model::CostModel cost(model::ModelSpec::Llama32B(), topo::GpuSpec());
  Rng rng(6);
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<double> rates;
    const int pp = static_cast<int>(rng.UniformInt(2, 4));
    for (int j = 0; j < pp; ++j) {
      rates.push_back(cost.Rho(4) * rng.Uniform(1.0, 3.0));
    }
    const std::vector<int> sizes(pp, 4);

    auto bottleneck_of = [&](const std::vector<double>& order) {
      Result<core::LayerAssignment> r = core::AssignLayers(
          order, sizes, /*micro_batch=*/1, /*dp=*/2, cost);
      if (!r.ok()) return std::numeric_limits<double>::infinity();
      return r.ValueOrDie().bottleneck;
    };

    std::vector<double> descending = rates;
    std::sort(descending.rbegin(), descending.rend());
    const double best_claimed = bottleneck_of(descending);

    std::vector<double> perm = rates;
    std::sort(perm.begin(), perm.end());
    do {
      EXPECT_LE(best_claimed, bottleneck_of(perm) + 1e-9)
          << "trial " << trial;
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
}

// Eq. (4): the division search enumerates slow-group placements exactly;
// the fast-group distribution is water-filling + exchange polish, so the
// objective must never beat brute force and stay within a few percent of
// it (the documented near-optimality bound).
TEST(DivisionExactnessTest, WithinPercentOfBruteForceOnSmallInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    const int dp = static_cast<int>(rng.UniformInt(2, 3));
    const int fast = static_cast<int>(rng.UniformInt(dp, dp + 3));
    const double fast_rate = rng.Uniform(0.1, 0.5);
    const int ms = static_cast<int>(rng.UniformInt(1, 3));
    std::vector<double> slow;
    for (int k = 0; k < ms; ++k) slow.push_back(rng.Uniform(1.0, 5.0));
    const int64_t total = rng.UniformInt(dp * 4, 64);

    solver::DivisionProblem problem;
    problem.num_pipelines = dp;
    problem.num_fast_groups = fast;
    problem.fast_rate = fast_rate;
    problem.slow_rates = slow;
    problem.total_microbatches = total;
    Result<solver::DivisionResult> got = solver::SolveDivision(problem);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(got->exact);

    // Brute force: every placement of slow groups x every split of fast
    // groups x exact integer data allocation.
    double best = std::numeric_limits<double>::infinity();
    std::vector<int> assign(ms, 0);
    while (true) {
      for (int h0 = 0; h0 <= fast; ++h0) {
        // Enumerate fast counts recursively only for dp <= 3.
        for (int h1 = 0; h1 + h0 <= fast; ++h1) {
          const int h2 = fast - h0 - h1;
          if (dp == 2 && h1 != fast - h0) continue;
          std::vector<int> h = {h0, h1};
          if (dp == 3) h.push_back(h2);
          std::vector<double> caps(dp, 0.0);
          for (int i = 0; i < dp; ++i) caps[i] = h[i] / fast_rate;
          for (int k = 0; k < ms; ++k) caps[assign[k]] += 1.0 / slow[k];
          bool ok = true;
          std::vector<double> inv(dp);
          for (int i = 0; i < dp; ++i) {
            if (caps[i] <= 0) ok = false;
            else inv[i] = 1.0 / caps[i];
          }
          if (!ok) continue;
          Result<solver::BottleneckSolution> alloc =
              solver::SolveBottleneckAllocation(inv, total);
          if (!alloc.ok()) continue;
          bool all_loaded = true;
          for (int64_t m : alloc->amounts) {
            if (m == 0) all_loaded = false;
          }
          if (!all_loaded) continue;
          best = std::min(best, alloc->bottleneck);
        }
      }
      // Next placement.
      int k = ms - 1;
      while (k >= 0 && assign[k] == dp - 1) {
        assign[k] = 0;
        --k;
      }
      if (k < 0) break;
      ++assign[k];
    }
    ASSERT_TRUE(std::isfinite(best));
    EXPECT_GE(got->objective, best - best * 1e-9) << "trial " << trial;
    EXPECT_LE(got->objective, best * 1.05) << "trial " << trial;
  }
}

}  // namespace
}  // namespace malleus
