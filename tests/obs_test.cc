// Tests for src/obs: Chrome trace-event export well-formedness, histogram
// quantile accuracy, counter/gauge semantics, registry export formats, and
// the SimulateStep span instrumentation (span count == 1F1B task count).

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "core/planner.h"
#include "model/cost_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/uniform.h"
#include "sim/pipeline_sim.h"
#include "topology/cluster.h"

namespace malleus {
namespace obs {
namespace {

// Minimal recursive-descent JSON well-formedness checker. Accepts exactly
// the grammar of RFC 8259; returns false on any syntax error. Enough to
// prove the exporters emit parseable JSON without an external library.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool Validate() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(s_[pos_])) return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(Peek())) return false;
    while (std::isdigit(Peek())) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(Peek())) return false;
      while (std::isdigit(Peek())) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(Peek())) return false;
      while (std::isdigit(Peek())) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) {
  return JsonValidator(text).Validate();
}

TEST(JsonValidatorTest, SelfCheck) {
  EXPECT_TRUE(IsValidJson(R"({"a":[1,2.5,-3e4],"b":"x\né","c":null})"));
  EXPECT_FALSE(IsValidJson(R"({"a":1,})"));
  EXPECT_FALSE(IsValidJson("{\"a\":\"\n\"}"));  // bare newline in string
  EXPECT_FALSE(IsValidJson("[1 2]"));
}

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_DOUBLE_EQ(c.Value(), 0.0);
  c.Increment();
  c.Increment(2.5);
  EXPECT_DOUBLE_EQ(c.Value(), 3.5);
  c.Reset();
  EXPECT_DOUBLE_EQ(c.Value(), 0.0);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(4.0);
  g.Add(-1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(HistogramTest, ExactStatsAndReset) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.Observe(v);
  EXPECT_EQ(h.Count(), 4);
  EXPECT_DOUBLE_EQ(h.Sum(), 10.0);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 4.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

TEST(HistogramTest, QuantilesWithinBucketError) {
  // Log-scale buckets with growth g bound the relative quantile error by
  // sqrt(g) (the bucket midpoint is at most half a bucket off).
  HistogramOptions opts;
  Histogram h(opts);
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i));
  const double tol = std::sqrt(opts.growth) + 1e-9;
  struct Case {
    double q, expected;
  };
  for (const Case& c :
       {Case{0.50, 500.0}, Case{0.95, 950.0}, Case{0.99, 990.0}}) {
    const double got = h.Quantile(c.q);
    EXPECT_GE(got, c.expected / tol) << "q=" << c.q;
    EXPECT_LE(got, c.expected * tol) << "q=" << c.q;
  }
  // Quantiles never leave the observed range.
  EXPECT_GE(h.Quantile(0.0), 1.0);
  EXPECT_LE(h.Quantile(1.0), 1000.0);
}

TEST(HistogramTest, SingleValueQuantilesClamp) {
  Histogram h;
  h.Observe(0.125);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.125);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.125);
}

TEST(MetricsRegistryTest, ExportsAndReset) {
  MetricsRegistry reg;
  reg.GetCounter("engine.replans")->Increment(3);
  reg.GetGauge("planner.last_estimate_seconds")->Set(1.25);
  Histogram* h = reg.GetHistogram("planner.solve_seconds");
  h->Observe(0.01);
  h->Observe(0.02);

  const std::string json = reg.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"engine.replans\""), std::string::npos);
  EXPECT_NE(json.find("\"planner.solve_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);

  const std::string text = reg.ToText();
  EXPECT_NE(text.find("engine.replans"), std::string::npos);
  EXPECT_NE(text.find("planner.solve_seconds"), std::string::npos);

  reg.ResetAll();
  EXPECT_DOUBLE_EQ(reg.GetCounter("engine.replans")->Value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("planner.last_estimate_seconds")->Value(),
                   0.0);
  EXPECT_EQ(reg.GetHistogram("planner.solve_seconds")->Count(), 0);
}

TEST(MetricsRegistryTest, HistogramJsonCarriesQuantileValues) {
  // The JSON render must expose p50/p95/p99 as numbers consistent with
  // the histogram's own quantile estimates — bench harnesses parse these
  // fields out of metrics.json snapshots.
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("whatif.replay_seconds");
  for (int i = 1; i <= 100; ++i) h->Observe(i * 0.001);
  const HistogramSnapshot snap = h->Snapshot();

  const std::string json = reg.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  for (const char* key : {"\"count\":100", "\"p50\":", "\"p95\":",
                          "\"p99\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  // The rendered values are the snapshot's values, byte-exact.
  EXPECT_NE(json.find(StrFormat("\"p50\":%s", JsonNumber(snap.p50).c_str())),
            std::string::npos)
      << json;
  EXPECT_NE(json.find(StrFormat("\"p95\":%s", JsonNumber(snap.p95).c_str())),
            std::string::npos)
      << json;
  EXPECT_NE(json.find(StrFormat("\"p99\":%s", JsonNumber(snap.p99).c_str())),
            std::string::npos)
      << json;
  // Sanity: the quantiles bracket the data and are ordered.
  EXPECT_GE(snap.p50, 0.001);
  EXPECT_LE(snap.p99, 0.1 * 1.5);
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
}

TEST(MetricsRegistryTest, NonFiniteValuesExportAsJsonNull) {
  // A gauge fed a NaN/Inf (e.g. a ratio over a zero denominator) must not
  // corrupt the JSON export; the registry renders such values as null.
  MetricsRegistry reg;
  reg.GetGauge("bad.gauge")->Set(std::numeric_limits<double>::quiet_NaN());
  reg.GetCounter("bad.counter")
      ->Increment(std::numeric_limits<double>::infinity());
  const std::string json = reg.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"bad.gauge\":null"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, GlobalIsStable) {
  MetricsRegistry& a = MetricsRegistry::Global();
  MetricsRegistry& b = MetricsRegistry::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.GetCounter("obs_test.stable"),
            b.GetCounter("obs_test.stable"));
}

TEST(MetricsRegistryTest, ConcurrentUpdatesAreNotLost) {
  // The planner's candidate sweep updates metrics from worker threads
  // (see core::Planner::Plan); hammer one registry from several threads
  // and check that no increment or observation is lost.
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 5000;
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        reg.GetCounter("hammer.count")->Increment();
        reg.GetGauge("hammer.gauge")->Set(static_cast<double>(t));
        reg.GetHistogram("hammer.hist")->Observe(1e-3 * (i % 10 + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(reg.GetCounter("hammer.count")->Value(),
                   kThreads * kOpsPerThread);
  EXPECT_EQ(reg.GetHistogram("hammer.hist")->Count(),
            kThreads * kOpsPerThread);
  const double gauge = reg.GetGauge("hammer.gauge")->Value();
  EXPECT_GE(gauge, 0.0);
  EXPECT_LT(gauge, kThreads);
  EXPECT_TRUE(IsValidJson(reg.ToJson()));
}

TEST(MetricsScopeTest, CurrentFallsBackToGlobalAndNestsAndRestores) {
  EXPECT_EQ(&MetricsRegistry::Current(), &MetricsRegistry::Global());
  MetricsRegistry a, b;
  {
    MetricsScope scope_a(&a);
    EXPECT_EQ(&MetricsRegistry::Current(), &a);
    {
      MetricsScope scope_b(&b);
      EXPECT_EQ(&MetricsRegistry::Current(), &b);
    }
    // Nested scopes restore the enclosing scope, not Global.
    EXPECT_EQ(&MetricsRegistry::Current(), &a);
  }
  EXPECT_EQ(&MetricsRegistry::Current(), &MetricsRegistry::Global());
}

TEST(MetricsScopeTest, ScopeIsPerThread) {
  MetricsRegistry a;
  MetricsScope scope(&a);
  MetricsRegistry* seen_on_other_thread = nullptr;
  std::thread t([&] { seen_on_other_thread = &MetricsRegistry::Current(); });
  t.join();
  // A scope installed on this thread must not leak into others.
  EXPECT_EQ(seen_on_other_thread, &MetricsRegistry::Global());
}

// Re-entrancy hammer: two planners run concurrently, each under its own
// tagged registry. Every planner.solves increment must land in the
// registry of the thread that ran the plan — none may cross-talk into the
// other request's registry or leak into Global. This is the contract the
// serving layer's per-request metrics depend on.
TEST(MetricsScopeTest, ConcurrentTaggedPlannersDoNotCrossTalk) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(1);
  const model::CostModel cost(model::ModelSpec::Tiny(), cluster.gpu());
  const double global_before =
      MetricsRegistry::Global().GetCounter("planner.solves")->Value();

  constexpr int kPlansPerThread = 3;
  MetricsRegistry registries[2];
  std::thread threads[2];
  for (int t = 0; t < 2; ++t) {
    threads[t] = std::thread([&, t] {
      MetricsScope scope(&registries[t]);
      core::Planner planner(cluster, cost);
      straggler::Situation situation(cluster.num_gpus());
      if (t == 1) situation.SetRate(0, 2.0);  // Distinct workloads.
      core::PlannerOptions options;
      options.num_threads = 2;  // Fan out inside the scope, too.
      for (int i = 0; i < kPlansPerThread; ++i) {
        MALLEUS_CHECK_OK(planner.Plan(situation, 16, options).status());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (int t = 0; t < 2; ++t) {
    EXPECT_DOUBLE_EQ(
        registries[t].GetCounter("planner.solves")->Value(),
        static_cast<double>(kPlansPerThread))
        << "registry " << t;
    // Pool workers re-install the scope, so candidate metrics land here
    // as well, not in Global.
    EXPECT_GT(
        registries[t].GetCounter("planner.candidates_explored")->Value(), 0)
        << "registry " << t;
  }
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().GetCounter("planner.solves")->Value(),
      global_before);
}

TEST(ScopedTimerTest, RecordsOneObservation) {
  Histogram h;
  { ScopedTimer t(&h); }
  EXPECT_EQ(h.Count(), 1);
  EXPECT_GE(h.Snapshot().min, 0.0);
}

TEST(TraceRecorderTest, ChromeJsonShape) {
  TraceRecorder rec;
  const TrackId gpu = rec.Track("pipeline 0", "stage 0");
  rec.AddSpan("fwd mb0", "compute", gpu, 0.0, 0.5,
              {TraceArg::Int("micro", 0), TraceArg::Str("gpus", "n0[0-3]")});
  rec.AddInstant("replan", "engine", rec.Track("engine", "transitions"), 1.0,
                 {TraceArg::Num("planning_seconds", 0.25)});
  EXPECT_EQ(rec.num_events(), 2u);

  const std::string json = rec.ToChromeTraceJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Track metadata for Perfetto naming.
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // Complete span + instant phases; instants carry thread scope.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  // Durations are microseconds: 0.5 s span -> 500000.
  EXPECT_NE(json.find("\"dur\":500000.0000"), std::string::npos);

  rec.Clear();
  EXPECT_EQ(rec.num_events(), 0u);
}

TEST(TraceRecorderTest, EscapesNamesInJson) {
  TraceRecorder rec;
  rec.AddSpan("odd \"name\"\nwith\tcontrol", "c,at",
              rec.Track("p\"d", "t\\d"), 0.0, 1.0,
              {TraceArg::Str("note", "line1\r\nline2 \x01")});
  const std::string json = rec.ToChromeTraceJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  // Quotes, backslashes and control characters in span/track names and
  // string args must come out escaped — a raw newline inside a JSON
  // string literal breaks chrome://tracing imports.
  EXPECT_NE(json.find("odd \\\"name\\\"\\nwith\\tcontrol"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("p\\\"d"), std::string::npos) << json;
  EXPECT_NE(json.find("t\\\\d"), std::string::npos) << json;
  EXPECT_NE(json.find("line1\\r\\nline2 \\u0001"), std::string::npos)
      << json;
  for (char c : json) {
    EXPECT_NE(c, '\x01');
  }
}

TEST(TraceRecorderTest, NonAsciiNamesPassThroughUtf8) {
  // UTF-8 multi-byte sequences are legal JSON string bytes and must pass
  // through unescaped (Perfetto renders them as-is).
  TraceRecorder rec;
  rec.AddSpan("stage \xc3\xa9tape \xe6\xae\xb5", "compute",
              rec.Track("n\xc5\x93ud 0", "GPU 0"), 0.0, 0.5, {});
  const std::string json = rec.ToChromeTraceJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("stage \xc3\xa9tape \xe6\xae\xb5"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("n\xc5\x93ud 0"), std::string::npos) << json;
}

class SimTraceTest : public ::testing::Test {
 protected:
  plan::ParallelPlan MakePlan(int dp, int tp, int pp) {
    plan::UniformConfig cfg;
    cfg.dp = dp;
    cfg.tp = tp;
    cfg.pp = pp;
    cfg.global_batch = 32;
    std::vector<topo::GpuId> all = cluster_.AllGpus();
    std::vector<topo::GpuId> gpus(all.begin(), all.begin() + dp * tp * pp);
    Result<plan::ParallelPlan> p =
        plan::BuildUniformPlan(cluster_, cost_, gpus, cfg);
    MALLEUS_CHECK_OK(p.status());
    return std::move(p).ValueOrDie();
  }

  std::string Simulate(const plan::ParallelPlan& p, TraceRecorder* rec,
                       uint64_t seed) {
    straggler::Situation healthy(cluster_.num_gpus());
    Rng rng(seed);
    sim::SimOptions opts;
    opts.timing_noise_stddev = 0.0;
    opts.trace = rec;
    Result<sim::StepResult> r =
        sim::SimulateStep(cluster_, cost_, p, healthy, opts, &rng);
    MALLEUS_CHECK_OK(r.status());
    return rec->ToChromeTraceJson();
  }

  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(2);
  model::CostModel cost_{model::ModelSpec::Tiny(), topo::GpuSpec()};
};

TEST_F(SimTraceTest, OneSpanPer1F1BTaskPlusGradSync) {
  const plan::ParallelPlan p = MakePlan(2, 2, 4);
  TraceRecorder rec;
  const std::string json = Simulate(p, &rec, 42);
  EXPECT_TRUE(IsValidJson(json));

  // Every stage of every pipeline runs its full 1F1B schedule, one span
  // per StageTask.
  size_t want_compute = 0;
  for (const plan::Pipeline& pipe : p.pipelines) {
    for (int s = 0; s < pipe.num_stages(); ++s) {
      want_compute +=
          sim::Build1F1BSchedule(s, pipe.num_stages(), pipe.num_microbatches)
              .size();
    }
  }
  EXPECT_GT(want_compute, 0u);
  EXPECT_EQ(rec.CountCategory("compute"), want_compute);
  // dp=2 -> one grad-sync span per pipeline.
  EXPECT_EQ(rec.CountCategory("sync"), p.pipelines.size());
  // pp=4 with P2P enabled -> at least one transfer span.
  EXPECT_GT(rec.CountCategory("comm"), 0u);
}

TEST_F(SimTraceTest, NoGradSyncSpanWithoutDataParallelism) {
  const plan::ParallelPlan p = MakePlan(1, 2, 4);
  TraceRecorder rec;
  Simulate(p, &rec, 42);
  EXPECT_EQ(rec.CountCategory("sync"), 0u);
  EXPECT_GT(rec.CountCategory("compute"), 0u);
}

TEST_F(SimTraceTest, DeterministicForFixedSeed) {
  const plan::ParallelPlan p = MakePlan(2, 2, 2);
  TraceRecorder a, b;
  const std::string ja = Simulate(p, &a, 7);
  const std::string jb = Simulate(p, &b, 7);
  EXPECT_EQ(ja, jb);

  TraceRecorder c;
  straggler::Situation s(cluster_.num_gpus());
  s.SetRate(0, 2.0);
  Rng rng(7);
  sim::SimOptions opts;
  opts.trace = &c;
  Result<sim::StepResult> r =
      sim::SimulateStep(cluster_, cost_, p, s, opts, &rng);
  MALLEUS_CHECK_OK(r.status());
  EXPECT_NE(ja, c.ToChromeTraceJson());  // straggler shifts span times
}

TEST_F(SimTraceTest, TimeOffsetShiftsAllSpans) {
  const plan::ParallelPlan p = MakePlan(1, 2, 2);
  TraceRecorder rec;
  straggler::Situation healthy(cluster_.num_gpus());
  Rng rng(3);
  sim::SimOptions opts;
  opts.timing_noise_stddev = 0.0;
  opts.trace = &rec;
  opts.trace_time_offset_seconds = 100.0;
  MALLEUS_CHECK_OK(
      sim::SimulateStep(cluster_, cost_, p, healthy, opts, &rng).status());
  for (const TraceEvent& e : rec.Events()) {
    EXPECT_GE(e.start_us, 100.0 * 1e6);
  }
}

}  // namespace
}  // namespace obs
}  // namespace malleus
