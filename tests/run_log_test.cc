// Tests for core/run_log: aggregation, phase means, and CSV export.

#include <gtest/gtest.h>

#include "core/run_log.h"

namespace malleus {
namespace core {
namespace {

StepReport MakeReport(double step, double migration = 0.0,
                      double recovery = 0.0, bool replanned = false) {
  StepReport r;
  r.step_seconds = step;
  r.migration_seconds = migration;
  r.recovery_seconds = recovery;
  r.replanned = replanned;
  return r;
}

TEST(RunLogTest, EmptySummary) {
  RunLog log;
  const RunLog::Summary s = log.Summarize();
  EXPECT_EQ(s.steps, 0);
  EXPECT_DOUBLE_EQ(s.TotalSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(s.Efficiency(), 1.0);
  EXPECT_DOUBLE_EQ(log.PhaseMeanSeconds("S1"), 0.0);
}

TEST(RunLogTest, SummaryAggregates) {
  RunLog log;
  log.Record("Normal", MakeReport(10.0));
  log.Record("S1", MakeReport(20.0, 2.0, 0.0, true));
  log.Record("S1", MakeReport(12.0));
  log.Record("S1", MakeReport(12.0, 0.0, 50.0, true));
  const RunLog::Summary s = log.Summarize();
  EXPECT_EQ(s.steps, 4);
  EXPECT_EQ(s.replans, 2);
  EXPECT_EQ(s.recoveries, 1);
  EXPECT_DOUBLE_EQ(s.training_seconds, 54.0);
  EXPECT_DOUBLE_EQ(s.migration_seconds, 2.0);
  EXPECT_DOUBLE_EQ(s.recovery_seconds, 50.0);
  EXPECT_DOUBLE_EQ(s.TotalSeconds(), 106.0);
  EXPECT_NEAR(s.Efficiency(), 54.0 / 106.0, 1e-12);
}

TEST(RunLogTest, PhaseMeans) {
  RunLog log;
  log.Record("Normal", MakeReport(10.0));
  log.Record("S1", MakeReport(20.0));
  log.Record("S1", MakeReport(10.0));
  EXPECT_DOUBLE_EQ(log.PhaseMeanSeconds("Normal"), 10.0);
  EXPECT_DOUBLE_EQ(log.PhaseMeanSeconds("S1"), 15.0);
}

TEST(RunLogTest, CsvFormat) {
  RunLog log;
  log.Record("S2", MakeReport(1.5, 0.25, 0.0, true));
  const std::string csv = log.ToCsv();
  EXPECT_NE(csv.find("step,phase,step_seconds"), std::string::npos);
  EXPECT_NE(csv.find("0,S2,1.5000,0.2500,0.0000,0.0000,1"), std::string::npos);
}

TEST(RunLogTest, CsvEscapesPhaseAndNotePerRfc4180) {
  RunLog log;
  StepReport r = MakeReport(1.0);
  r.note = "shift, then \"snap\"\nline2";
  log.Record("S1,custom", r);
  const std::string csv = log.ToCsv();
  // Comma-bearing phase is quoted; note doubles embedded quotes and keeps
  // the newline inside the quoted field.
  EXPECT_NE(csv.find("\"S1,custom\""), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"shift, then \"\"snap\"\"\nline2\""),
            std::string::npos)
      << csv;
  // The header gained the note column.
  EXPECT_NE(csv.find("replanned,note"), std::string::npos);
  // Plain fields stay unquoted.
  log = RunLog();
  log.Record("Normal", MakeReport(2.0));
  EXPECT_EQ(log.ToCsv().find('"'), std::string::npos);
}

TEST(RunLogTest, DerivesTypedEvents) {
  RunLog log;
  log.Record("Normal", MakeReport(10.0));  // no events
  StepReport replan = MakeReport(20.0, 2.0, 0.0, true);
  replan.plan_signature = "dp2[tp4pp4]";
  replan.note = "straggler shift";
  log.Record("S1", replan);
  StepReport fail = MakeReport(12.0, 0.0, 50.0, true);
  log.Record("S3", fail);

  const std::vector<RunEvent>& ev = log.events();
  ASSERT_EQ(ev.size(), 6u);
  // Step 1: replan + plan-adopted + migrate.
  EXPECT_EQ(ev[0].type, RunEventType::kReplan);
  EXPECT_EQ(ev[0].step, 1);
  EXPECT_EQ(ev[0].phase, "S1");
  EXPECT_EQ(ev[0].detail, "straggler shift");
  EXPECT_EQ(ev[1].type, RunEventType::kPlanAdopted);
  EXPECT_EQ(ev[1].plan_signature, "dp2[tp4pp4]");
  EXPECT_EQ(ev[2].type, RunEventType::kMigrate);
  EXPECT_DOUBLE_EQ(ev[2].seconds, 2.0);
  // Step 2: fail + recover, then the post-recovery replan.
  EXPECT_EQ(ev[3].type, RunEventType::kFail);
  EXPECT_EQ(ev[4].type, RunEventType::kRecover);
  EXPECT_DOUBLE_EQ(ev[4].seconds, 50.0);
  EXPECT_EQ(ev[5].type, RunEventType::kReplan);
}

TEST(RunLogTest, JsonlHasStepAndEventLines) {
  RunLog log;
  log.Record("Normal", MakeReport(10.0));
  StepReport replan = MakeReport(20.0, 2.0, 0.0, true);
  replan.plan_signature = "sig-1";
  log.Record("S1", replan);

  const std::string jsonl = log.ToJsonl();
  // One line per step plus one line per derived event, all joinable on
  // "step".
  size_t lines = 0;
  for (char c : jsonl) lines += (c == '\n');
  EXPECT_EQ(lines, 2u + log.events().size());
  EXPECT_NE(jsonl.find("\"kind\":\"step\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"event\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"replan\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"plan_adopted\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"plan_signature\":\"sig-1\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"replanned\":true"), std::string::npos);
}

TEST(RunLogTest, IntegratesWithEngine) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(2);
  const model::CostModel cost(model::ModelSpec::Llama32B(),
                              cluster.gpu());
  MalleusEngine engine(cluster, cost);
  ASSERT_TRUE(engine.Initialize(64).ok());
  RunLog log;
  straggler::Situation healthy(cluster.num_gpus());
  straggler::Situation s1(cluster.num_gpus());
  s1.SetLevel(0, 1);
  for (int i = 0; i < 3; ++i) {
    log.Record("Normal", *engine.Step(healthy));
  }
  for (int i = 0; i < 3; ++i) {
    log.Record("S1", *engine.Step(s1));
  }
  const RunLog::Summary s = log.Summarize();
  EXPECT_EQ(s.steps, 6);
  EXPECT_GE(s.replans, 1);
  EXPECT_GT(log.PhaseMeanSeconds("S1"), 0.0);
  EXPECT_LT(s.Efficiency(), 1.0 + 1e-12);
}

}  // namespace
}  // namespace core
}  // namespace malleus
