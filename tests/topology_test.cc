// Tests for src/topology: cluster shape, id mapping, link model.

#include <gtest/gtest.h>

#include "topology/cluster.h"

namespace malleus {
namespace topo {
namespace {

TEST(ClusterTest, A800Defaults) {
  const ClusterSpec c = ClusterSpec::A800Cluster(8);
  EXPECT_EQ(c.num_nodes(), 8);
  EXPECT_EQ(c.gpus_per_node(), 8);
  EXPECT_EQ(c.num_gpus(), 64);
  EXPECT_DOUBLE_EQ(c.gpu().peak_tflops, 312.0);
  EXPECT_EQ(c.gpu().memory_bytes, 80ULL << 30);
  EXPECT_TRUE(c.Validate().ok());
}

TEST(ClusterTest, NodeMapping) {
  const ClusterSpec c(4, 8);
  EXPECT_EQ(c.NodeOf(0), 0);
  EXPECT_EQ(c.NodeOf(7), 0);
  EXPECT_EQ(c.NodeOf(8), 1);
  EXPECT_EQ(c.NodeOf(31), 3);
  EXPECT_EQ(c.LocalIndexOf(13), 5);
  EXPECT_TRUE(c.SameNode(8, 15));
  EXPECT_FALSE(c.SameNode(7, 8));
}

TEST(ClusterTest, GpusOnNode) {
  const ClusterSpec c(2, 4);
  EXPECT_EQ(c.GpusOnNode(1), (std::vector<GpuId>{4, 5, 6, 7}));
  EXPECT_EQ(c.AllGpus().size(), 8u);
}

TEST(ClusterTest, ValidGpuRange) {
  const ClusterSpec c(2, 4);
  EXPECT_TRUE(c.ValidGpu(0));
  EXPECT_TRUE(c.ValidGpu(7));
  EXPECT_FALSE(c.ValidGpu(8));
  EXPECT_FALSE(c.ValidGpu(-1));
}

TEST(ClusterTest, BandwidthIntraVsInter) {
  const ClusterSpec c(2, 8);
  EXPECT_GT(c.BandwidthBytesPerSec(0, 1), c.BandwidthBytesPerSec(0, 8));
  EXPECT_DOUBLE_EQ(c.BandwidthBytesPerSec(0, 1), 400e9);
  EXPECT_DOUBLE_EQ(c.BandwidthBytesPerSec(0, 8), 200e9);
  EXPECT_LT(c.LatencySec(0, 1), c.LatencySec(0, 8));
}

TEST(ClusterTest, UsableBytesExcludesReservedGap) {
  GpuSpec g;
  EXPECT_EQ(g.UsableBytes(), (80ULL << 30) - (4096ULL << 20));
  GpuSpec tiny;
  tiny.memory_bytes = 1 << 20;
  tiny.reserved_bytes = 2 << 20;
  EXPECT_EQ(tiny.UsableBytes(), 0u);
}

TEST(ClusterTest, ValidationCatchesBadShapes) {
  EXPECT_FALSE(ClusterSpec(0, 8).Validate().ok());
  EXPECT_FALSE(ClusterSpec(2, 0).Validate().ok());
  GpuSpec bad;
  bad.peak_tflops = -1;
  EXPECT_FALSE(ClusterSpec(2, 8, bad).Validate().ok());
  GpuSpec oom;
  oom.memory_bytes = 1;
  oom.reserved_bytes = 2;
  EXPECT_FALSE(ClusterSpec(2, 8, oom).Validate().ok());
}

}  // namespace
}  // namespace topo
}  // namespace malleus
