// Tests for src/topology: cluster shape, id mapping, link model.

#include <gtest/gtest.h>

#include "topology/cluster.h"

namespace malleus {
namespace topo {
namespace {

TEST(ClusterTest, A800Defaults) {
  const ClusterSpec c = ClusterSpec::A800Cluster(8);
  EXPECT_EQ(c.num_nodes(), 8);
  EXPECT_EQ(c.gpus_per_node(), 8);
  EXPECT_EQ(c.num_gpus(), 64);
  EXPECT_DOUBLE_EQ(c.gpu().peak_tflops, 312.0);
  EXPECT_EQ(c.gpu().memory_bytes, 80ULL << 30);
  EXPECT_TRUE(c.Validate().ok());
}

TEST(ClusterTest, NodeMapping) {
  const ClusterSpec c(4, 8);
  EXPECT_EQ(c.NodeOf(0), 0);
  EXPECT_EQ(c.NodeOf(7), 0);
  EXPECT_EQ(c.NodeOf(8), 1);
  EXPECT_EQ(c.NodeOf(31), 3);
  EXPECT_EQ(c.LocalIndexOf(13), 5);
  EXPECT_TRUE(c.SameNode(8, 15));
  EXPECT_FALSE(c.SameNode(7, 8));
}

TEST(ClusterTest, GpusOnNode) {
  const ClusterSpec c(2, 4);
  EXPECT_EQ(c.GpusOnNode(1), (std::vector<GpuId>{4, 5, 6, 7}));
  EXPECT_EQ(c.AllGpus().size(), 8u);
}

TEST(ClusterTest, ValidGpuRange) {
  const ClusterSpec c(2, 4);
  EXPECT_TRUE(c.ValidGpu(0));
  EXPECT_TRUE(c.ValidGpu(7));
  EXPECT_FALSE(c.ValidGpu(8));
  EXPECT_FALSE(c.ValidGpu(-1));
}

TEST(ClusterTest, BandwidthIntraVsInter) {
  const ClusterSpec c(2, 8);
  EXPECT_GT(c.BandwidthBytesPerSec(0, 1), c.BandwidthBytesPerSec(0, 8));
  EXPECT_DOUBLE_EQ(c.BandwidthBytesPerSec(0, 1), 400e9);
  EXPECT_DOUBLE_EQ(c.BandwidthBytesPerSec(0, 8), 200e9);
  EXPECT_LT(c.LatencySec(0, 1), c.LatencySec(0, 8));
}

TEST(ClusterTest, UsableBytesExcludesReservedGap) {
  GpuSpec g;
  EXPECT_EQ(g.UsableBytes(), (80ULL << 30) - (4096ULL << 20));
  GpuSpec tiny;
  tiny.memory_bytes = 1 << 20;
  tiny.reserved_bytes = 2 << 20;
  EXPECT_EQ(tiny.UsableBytes(), 0u);
}

TEST(ClusterTest, ValidationCatchesBadShapes) {
  EXPECT_FALSE(ClusterSpec(0, 8).Validate().ok());
  EXPECT_FALSE(ClusterSpec(2, 0).Validate().ok());
  GpuSpec bad;
  bad.peak_tflops = -1;
  EXPECT_FALSE(ClusterSpec(2, 8, bad).Validate().ok());
  GpuSpec oom;
  oom.memory_bytes = 1;
  oom.reserved_bytes = 2;
  EXPECT_FALSE(ClusterSpec(2, 8, oom).Validate().ok());
}

FabricSpec FatTree(int nodes_per_pod, double oversub) {
  FabricSpec f;
  f.kind = FabricSpec::Kind::kFatTree;
  f.nodes_per_pod = nodes_per_pod;
  f.oversubscription = oversub;
  return f;
}

FabricSpec Rail(double oversub) {
  FabricSpec f;
  f.kind = FabricSpec::Kind::kRail;
  f.oversubscription = oversub;
  return f;
}

TEST(FabricSpecTest, KindNamesRoundTrip) {
  EXPECT_STREQ(FabricKindName(FabricSpec::Kind::kFlat), "flat");
  EXPECT_STREQ(FabricKindName(FabricSpec::Kind::kFatTree), "fat-tree");
  EXPECT_STREQ(FabricKindName(FabricSpec::Kind::kRail), "rail");
  EXPECT_EQ(ParseFabricKind("fat-tree").ValueOrDie(),
            FabricSpec::Kind::kFatTree);
  EXPECT_EQ(ParseFabricKind("fattree").ValueOrDie(),
            FabricSpec::Kind::kFatTree);
  EXPECT_EQ(ParseFabricKind("fat_tree").ValueOrDie(),
            FabricSpec::Kind::kFatTree);
  EXPECT_EQ(ParseFabricKind("rail").ValueOrDie(), FabricSpec::Kind::kRail);
  EXPECT_EQ(ParseFabricKind("flat").ValueOrDie(), FabricSpec::Kind::kFlat);
  EXPECT_FALSE(ParseFabricKind("dragonfly").ok());
}

TEST(FabricSpecTest, FatTreePodsAndUplinks) {
  const ClusterSpec c(8, 8, GpuSpec(), LinkSpec(), FatTree(2, 4.0));
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_EQ(c.NodesPerPod(), 2);
  EXPECT_EQ(c.num_pods(), 4);
  EXPECT_EQ(c.PodOf(0), 0);
  EXPECT_EQ(c.PodOf(1), 0);
  EXPECT_EQ(c.PodOf(2), 1);
  EXPECT_TRUE(c.SamePod(0, 15));    // Nodes 0 and 1.
  EXPECT_FALSE(c.SamePod(0, 16));   // Nodes 0 and 2.
  // Pod uplink: 2 nodes x 200 GB/s / 4:1 taper = 100 GB/s.
  EXPECT_DOUBLE_EQ(c.PodUplinkBytesPerSec(), 100e9);
  // Cross-pod bandwidth is gated by the uplink; intra-pod is not.
  EXPECT_DOUBLE_EQ(c.BandwidthBytesPerSec(0, 8), 200e9);
  EXPECT_DOUBLE_EQ(c.BandwidthBytesPerSec(0, 16), 100e9);
  // Cross-pod pays the spine latency on top of the inter-node latency.
  EXPECT_GT(c.LatencySec(0, 16), c.LatencySec(0, 8));
}

TEST(FabricSpecTest, RailUplinksAndSameRail) {
  const ClusterSpec c(4, 8, GpuSpec(), LinkSpec(), Rail(2.0));
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_EQ(c.RailOf(0), 0);
  EXPECT_EQ(c.RailOf(9), 1);
  EXPECT_TRUE(c.SameRail(1, 9));
  EXPECT_FALSE(c.SameRail(0, 9));
  // Rail uplink: 4 nodes x 200 GB/s / 2:1 taper = 400 GB/s — wider than a
  // single NIC, so same- and cross-rail bandwidth agree here.
  EXPECT_DOUBLE_EQ(c.RailUplinkBytesPerSec(), 400e9);
  EXPECT_DOUBLE_EQ(c.BandwidthBytesPerSec(0, 8), 200e9);
  // An 8:1 taper narrows the cross-rail path below the NIC.
  const ClusterSpec tapered(4, 8, GpuSpec(), LinkSpec(), Rail(8.0));
  EXPECT_DOUBLE_EQ(tapered.BandwidthBytesPerSec(0, 9), 100e9);
  EXPECT_DOUBLE_EQ(tapered.BandwidthBytesPerSec(0, 8), 200e9);
}

TEST(FabricSpecTest, ValidationCatchesBadFabrics) {
  // nodes_per_pod must divide the node count.
  EXPECT_FALSE(
      ClusterSpec(8, 8, GpuSpec(), LinkSpec(), FatTree(3, 1.0))
          .Validate()
          .ok());
  // Fat-tree requires a pod size.
  EXPECT_FALSE(
      ClusterSpec(8, 8, GpuSpec(), LinkSpec(), FatTree(0, 1.0))
          .Validate()
          .ok());
  // Oversubscription below 1 would mint bandwidth.
  EXPECT_FALSE(
      ClusterSpec(8, 8, GpuSpec(), LinkSpec(), FatTree(2, 0.5))
          .Validate()
          .ok());
  // Flat and rail fabrics reject a stray pod size.
  FabricSpec stray = Rail(1.0);
  stray.nodes_per_pod = 2;
  EXPECT_FALSE(ClusterSpec(8, 8, GpuSpec(), LinkSpec(), stray)
                   .Validate()
                   .ok());
  FabricSpec neg = FatTree(2, 1.0);
  neg.spine_latency_s = -1e-6;
  EXPECT_FALSE(
      ClusterSpec(8, 8, GpuSpec(), LinkSpec(), neg).Validate().ok());
}

TEST(FabricSpecTest, ToStringNamesHierarchicalFabrics) {
  const ClusterSpec flat(2, 8);
  const ClusterSpec ft(8, 8, GpuSpec(), LinkSpec(), FatTree(4, 2.0));
  const ClusterSpec rail(4, 8, GpuSpec(), LinkSpec(), Rail(2.0));
  EXPECT_EQ(flat.ToString().find("fat-tree"), std::string::npos);
  EXPECT_NE(ft.ToString().find("fat-tree"), std::string::npos);
  EXPECT_NE(rail.ToString().find("rail"), std::string::npos);
  // Fabric-aware ToString differentiates planner cache fingerprints.
  EXPECT_NE(ft.ToString(), ClusterSpec(8, 8).ToString());
}

}  // namespace
}  // namespace topo
}  // namespace malleus
