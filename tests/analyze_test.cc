// Tests for malleus::analyze — detlint's lexer, rule matchers, symbol
// index, baseline, and the self-test corpus under tests/detlint_corpus/
// (every bad_<rule>.cc yields exactly its rule at the marked line, every
// good_<rule>.cc is clean). The CLI surface (exit codes, SARIF-on-stdout,
// directory walk) is pinned separately by tests/detlint_exit_codes.cmake.

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "lint/diagnostic.h"

namespace malleus {
namespace analyze {
namespace {

// ----- Helpers ---------------------------------------------------------

// Analyzes `source` as `path` with an index built from that source alone
// (plus any extra sources, e.g. a companion header).
lint::DiagnosticSink Analyze(const std::string& path,
                             const std::string& source,
                             const std::vector<std::string>& extra = {}) {
  SymbolIndex index;
  const LexedFile file = Lex(source);
  index.AddFile(file);
  std::vector<LexedFile> others;
  for (const std::string& s : extra) {
    others.push_back(Lex(s));
    index.AddFile(others.back());
  }
  lint::DiagnosticSink sink;
  AnalyzeFile(path, file, index, AnalyzeOptions(), &sink);
  return sink;
}

std::vector<std::string> Codes(const lint::DiagnosticSink& sink) {
  std::vector<std::string> out;
  for (const lint::Diagnostic& d : sink.diagnostics()) out.push_back(d.code);
  return out;
}

// ----- Lexer -----------------------------------------------------------

TEST(LexTest, StripsCommentsAndPreprocessorKeepsLineNumbers) {
  const LexedFile f = Lex(
      "#include <map>\n"
      "// a comment\n"
      "int x = 1;  /* trailing */\n"
      "int y;\n");
  ASSERT_EQ(f.toks.size(), 8u);  // int x = 1 ; int y ;
  EXPECT_EQ(f.toks[0].text, "int");
  EXPECT_EQ(f.toks[0].line, 3);
  EXPECT_EQ(f.toks[4].text, ";");
  EXPECT_EQ(f.toks[5].text, "int");
  EXPECT_EQ(f.toks[5].line, 4);
}

TEST(LexTest, LiteralsAreSingleTokens) {
  const LexedFile f = Lex(
      "const char* s = \"rand() inside a string\";\n"
      "const char* r = R\"x(raw rand())x\";\n"
      "char c = '\\'';\n");
  for (const Tok& t : f.toks) {
    if (t.kind == TokKind::kIdent) {
      EXPECT_NE(t.text, "rand");
    }
  }
}

TEST(LexTest, ParsesAllowAnnotations) {
  const LexedFile f = Lex(
      "int a;  // detlint:allow(det.banned-function reason text here)\n"
      "int b;  // detlint:allow(det.pointer-ordering)\n");
  ASSERT_EQ(f.allows.size(), 2u);
  EXPECT_EQ(f.allows[0].line, 1);
  EXPECT_EQ(f.allows[0].code, "det.banned-function");
  EXPECT_EQ(f.allows[0].reason, "reason text here");
  EXPECT_EQ(f.allows[1].code, "det.pointer-ordering");
  EXPECT_TRUE(f.allows[1].reason.empty());  // Malformed: no reason.

  EXPECT_TRUE(f.IsAllowed("det.banned-function", 1));
  EXPECT_TRUE(f.IsAllowed("det.banned-function", 2));  // Line below too.
  EXPECT_FALSE(f.IsAllowed("det.banned-function", 3));
  EXPECT_FALSE(f.IsAllowed("det.pointer-ordering", 2));  // No reason.
}

TEST(LexTest, MatchingCloseAndTemplateArgs) {
  const LexedFile f = Lex("std::map<int, std::pair<int, int>> m;");
  // Tokens: std :: map < int , std :: pair < int , int >> m ;
  size_t lt = 0;
  for (size_t i = 0; i < f.toks.size(); ++i) {
    if (f.toks[i].text == "<") {
      lt = i;
      break;
    }
  }
  const size_t after = SkipTemplateArgs(f.toks, lt);
  ASSERT_LT(after, f.toks.size());
  EXPECT_EQ(f.toks[after].text, "m");
}

// ----- Registry --------------------------------------------------------

TEST(RulesTest, SortedUniqueAndDocumented) {
  const std::vector<RuleInfo>& rules = Rules();
  ASSERT_GE(rules.size(), 9u);
  std::set<std::string> codes;
  std::string prev;
  for (const RuleInfo& r : rules) {
    EXPECT_LT(prev, std::string(r.code));
    prev = r.code;
    codes.insert(r.code);
    EXPECT_NE(std::string(r.summary), "");
    EXPECT_NE(std::string(r.explanation), "");
  }
  for (const char* c :
       {kRuleUnorderedIteration, kRuleParallelFpAccumulation,
        kRuleBannedFunction, kRulePointerOrdering, kRuleSharedMutableCapture,
        kRuleMissingMetricsScope, kRuleStatusDiscarded, kRuleBadAllow}) {
    EXPECT_EQ(codes.count(c), 1u) << c;
    EXPECT_NE(FindRule(c), nullptr) << c;
  }
  EXPECT_EQ(FindRule("no.such.rule"), nullptr);
}

// ----- Corpus: every rule has a positive and a negative case -----------

struct CorpusCase {
  const char* rule;
  const char* base;  ///< tests/detlint_corpus/{bad,good}_<base>.cc
};

const CorpusCase kCorpus[] = {
    {kRuleUnorderedIteration, "unordered_iteration"},
    {kRuleParallelFpAccumulation, "parallel_fp_accumulation"},
    {kRuleBannedFunction, "banned_function"},
    {kRulePointerOrdering, "pointer_ordering"},
    {kRuleSharedMutableCapture, "shared_mutable_capture"},
    {kRuleMissingMetricsScope, "missing_metrics_scope"},
    {kRuleStatusDiscarded, "status_discarded"},
    {kRuleBadAllow, "bad_allow"},
};

std::string ReadCorpus(const std::string& name) {
  const std::string path =
      std::string(MALLEUS_DETLINT_CORPUS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// 1-based line of the `<-- finding` marker in a bad corpus file.
int MarkerLine(const std::string& source) {
  int line = 1;
  size_t pos = 0;
  while (pos < source.size()) {
    const size_t eol = source.find('\n', pos);
    const std::string text = source.substr(
        pos, (eol == std::string::npos ? source.size() : eol) - pos);
    if (text.find("<-- finding") != std::string::npos) return line;
    if (eol == std::string::npos) break;
    pos = eol + 1;
    ++line;
  }
  return 0;
}

TEST(CorpusTest, BadFilesYieldExactlyTheirRuleAtTheMarkedLine) {
  for (const CorpusCase& c : kCorpus) {
    const std::string name = std::string("bad_") + c.base + ".cc";
    const std::string source = ReadCorpus(name);
    const int marker = MarkerLine(source);
    ASSERT_GT(marker, 0) << name << " lacks a <-- finding marker";
    const lint::DiagnosticSink sink = Analyze(name, source);
    ASSERT_EQ(sink.size(), 1u)
        << name << " diagnostics: " << lint::RenderText(sink);
    const lint::Diagnostic& d = sink.diagnostics()[0];
    EXPECT_EQ(d.code, c.rule) << name;
    EXPECT_EQ(d.location, name + ":" + std::to_string(marker)) << name;
    EXPECT_EQ(d.severity, lint::Severity::kError) << name;
  }
}

TEST(CorpusTest, GoodFilesAreClean) {
  for (const CorpusCase& c : kCorpus) {
    const std::string name = std::string("good_") + c.base + ".cc";
    const lint::DiagnosticSink sink = Analyze(name, ReadCorpus(name));
    EXPECT_TRUE(sink.empty())
        << name << " diagnostics: " << lint::RenderText(sink);
  }
}

// ----- Targeted matcher behavior ---------------------------------------

TEST(AnalyzeTest, CrossFileUnorderedMemberIsFlagged) {
  const std::string header =
      "struct Memo { std::unordered_map<std::string, int> table_; };\n";
  const std::string cc =
      "int Dump(const Memo& m) {\n"
      "  int n = 0;\n"
      "  for (const auto& kv : m.table_) n += kv.second;\n"
      "  return n;\n"
      "}\n";
  const lint::DiagnosticSink sink = Analyze("memo.cc", cc, {header});
  ASSERT_EQ(sink.size(), 1u) << lint::RenderText(sink);
  EXPECT_EQ(sink.diagnostics()[0].code, kRuleUnorderedIteration);
  EXPECT_EQ(sink.diagnostics()[0].location, "memo.cc:3");
}

TEST(AnalyzeTest, CrossFileAmbiguousNameIsSkipped) {
  // `table_` is unordered in one class and ordered in another: a lexical
  // matcher cannot tell which one `m.table_` is, so it must stay silent.
  const std::string h1 =
      "struct A { std::unordered_map<std::string, int> table_; };\n";
  const std::string h2 = "struct B { std::map<std::string, int> table_; };\n";
  const std::string cc =
      "int Dump(const B& m) {\n"
      "  int n = 0;\n"
      "  for (const auto& kv : m.table_) n += kv.second;\n"
      "  return n;\n"
      "}\n";
  EXPECT_TRUE(Analyze("memo.cc", cc, {h1, h2}).empty());
}

TEST(AnalyzeTest, SortedRangeCallIsTheSanctionedFix) {
  const std::string cc =
      "void F(const std::unordered_map<int, int>& m) {\n"
      "  for (const auto& kv : Sorted(m)) Use(kv);\n"
      "}\n";
  EXPECT_TRUE(Analyze("f.cc", cc).empty());
}

TEST(AnalyzeTest, BannedFunctionsRelaxedUnderBench) {
  const std::string cc = "int Jitter() { return rand(); }\n";
  const lint::DiagnosticSink src = Analyze("src/net/jitter.cc", cc);
  ASSERT_EQ(src.size(), 1u);
  EXPECT_EQ(src.diagnostics()[0].code, kRuleBannedFunction);
  EXPECT_TRUE(Analyze("bench/jitter.cc", cc).empty());
}

TEST(AnalyzeTest, AllowOnSameLineSuppresses) {
  const std::string cc =
      "int Jitter() { return rand(); }  "
      "// detlint:allow(det.banned-function seeded upstream, test shim)\n";
  EXPECT_TRUE(Analyze("src/shim.cc", cc).empty());
}

TEST(AnalyzeTest, AllowNamingUnknownRuleIsAFinding) {
  const std::string cc =
      "int x = 1;  // detlint:allow(det.no-such-rule some reason)\n";
  const lint::DiagnosticSink sink = Analyze("x.cc", cc);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.diagnostics()[0].code, kRuleBadAllow);
}

TEST(AnalyzeTest, StatusDiscardAmbiguousCalleeIsSkipped) {
  // `Reset` returns Status in one declaration and void in another, so a
  // bare `Reset();` statement must not be flagged.
  const std::string decls = "Status Reset();\nvoid Reset();\n";
  const std::string cc = "void F() { Reset(); }\n";
  EXPECT_TRUE(Analyze("f.cc", cc, {decls}).empty());
}

TEST(AnalyzeTest, StatusDiscardInsideIfBodyIsFlagged) {
  const std::string cc =
      "Status Save();\n"
      "void F(bool dirty) {\n"
      "  if (dirty) Save();\n"
      "}\n";
  const lint::DiagnosticSink sink = Analyze("f.cc", cc);
  ASSERT_EQ(sink.size(), 1u) << lint::RenderText(sink);
  EXPECT_EQ(sink.diagnostics()[0].code, kRuleStatusDiscarded);
  EXPECT_EQ(sink.diagnostics()[0].location, "f.cc:3");
}

// ----- Baseline --------------------------------------------------------

TEST(BaselineTest, ParsesEntriesAndRejectsMissingReason) {
  const Result<std::vector<BaselineEntry>> ok = ParseBaseline(
      "# comment\n"
      "\n"
      "det.banned-function src/a.cc:12 migrating to seeded rng\n");
  ASSERT_TRUE(ok.ok());
  ASSERT_EQ(ok.ValueOrDie().size(), 1u);
  EXPECT_EQ(ok.ValueOrDie()[0].code, "det.banned-function");
  EXPECT_EQ(ok.ValueOrDie()[0].file, "src/a.cc");
  EXPECT_EQ(ok.ValueOrDie()[0].line, 12);
  EXPECT_EQ(ok.ValueOrDie()[0].reason, "migrating to seeded rng");

  EXPECT_FALSE(ParseBaseline("det.banned-function src/a.cc:12\n").ok());
  EXPECT_FALSE(ParseBaseline("det.banned-function src/a.cc why\n").ok());
  EXPECT_FALSE(ParseBaseline("just-a-code\n").ok());
}

TEST(BaselineTest, SuppressesMatchesAndReportsStaleEntries) {
  lint::DiagnosticSink raw;
  raw.Report(lint::Severity::kError, kRuleBannedFunction, "src/a.cc:12",
             "rand() used");
  raw.Report(lint::Severity::kError, kRuleBannedFunction, "src/b.cc:3",
             "rand() used");

  std::vector<BaselineEntry> baseline;
  baseline.push_back({kRuleBannedFunction, "src/a.cc", 12, "accepted"});
  baseline.push_back({kRuleBannedFunction, "src/gone.cc", 9, "was fixed"});

  lint::DiagnosticSink out;
  ApplyBaseline(baseline, raw, &out);
  const std::vector<std::string> codes = Codes(out);
  ASSERT_EQ(codes.size(), 2u) << lint::RenderText(out);
  EXPECT_EQ(codes[0], kRuleBannedFunction);  // b.cc survives.
  EXPECT_EQ(out.diagnostics()[0].location, "src/b.cc:3");
  EXPECT_EQ(codes[1], "detlint.stale-baseline");
  EXPECT_EQ(out.diagnostics()[1].severity, lint::Severity::kNote);
  EXPECT_TRUE(out.HasErrors());  // The unbaselined finding still fails.
}

// ----- SARIF shape -----------------------------------------------------

TEST(SarifTest, FindingsCarryPhysicalLocations) {
  const lint::DiagnosticSink sink =
      Analyze("src/pick.cc", "int Pick() { return rand(); }\n");
  ASSERT_EQ(sink.size(), 1u);
  const std::string sarif = lint::RenderSarif(sink, "src", "malleus-detlint");
  EXPECT_NE(sarif.find("\"name\":\"malleus-detlint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"physicalLocation\":{\"artifactLocation\":"
                       "{\"uri\":\"src/pick.cc\"},"
                       "\"region\":{\"startLine\":1}}"),
            std::string::npos)
      << sarif;
  EXPECT_NE(sarif.find("sarif-2.1.0"), std::string::npos);
}

}  // namespace
}  // namespace analyze
}  // namespace malleus
