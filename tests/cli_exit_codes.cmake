# CLI contract test, run via `cmake -P` (see tests/CMakeLists.txt):
#   - scenario_cli exits 1 when the framework cannot produce a valid plan,
#     0 on a clean lint, 2 on usage errors;
#   - malleus_lint exits 0 / 1 / 2 for clean / errors-or-unanalyzable /
#     usage, and its json/sarif outputs carry the schema markers.
# Expects -DSCENARIO_CLI, -DMALLEUS_LINT, -DSCENARIO_DIR.

function(expect_exit code)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE result
                  OUTPUT_VARIABLE stdout
                  ERROR_VARIABLE stderr)
  if(NOT result EQUAL ${code})
    message(FATAL_ERROR
            "expected exit ${code}, got ${result} from: ${ARGN}\n"
            "stdout:\n${stdout}\nstderr:\n${stderr}")
  endif()
  set(last_stdout "${stdout}" PARENT_SCOPE)
endfunction()

function(expect_stdout_contains needle)
  if(NOT last_stdout MATCHES "${needle}")
    message(FATAL_ERROR
            "stdout does not contain '${needle}':\n${last_stdout}")
  endif()
endfunction()

set(clean_scenario "${SCENARIO_DIR}/healthy_32b.scenario")

# An unplannable run is a failed run: 110B cannot fit on a single node.
expect_exit(1 ${SCENARIO_CLI} --model=110b --nodes=1 --steps=1
            --trace=normal)

# Linting a clean scenario succeeds in every format.
expect_exit(0 ${SCENARIO_CLI} --scenario=${clean_scenario} --lint)
expect_exit(0 ${SCENARIO_CLI} --scenario=${clean_scenario} --lint=json)
expect_stdout_contains("\"errors\":0")
expect_exit(0 ${SCENARIO_CLI} --scenario=${clean_scenario} --lint=sarif)
expect_stdout_contains("sarif-2.1.0")

# Usage errors are distinct from lint failures.
expect_exit(2 ${SCENARIO_CLI} --lint)                 # --lint needs a file.
expect_exit(2 ${SCENARIO_CLI} --no-such-flag)

# Standalone linter: clean file.
expect_exit(0 ${MALLEUS_LINT} ${clean_scenario})
expect_stdout_contains("no diagnostics")
expect_exit(0 ${MALLEUS_LINT} --format=sarif ${clean_scenario})
expect_stdout_contains("https://json.schemastore.org/sarif-2.1.0.json")
expect_exit(0 ${MALLEUS_LINT} --list)
expect_stdout_contains("plan.stage-imbalance")

# Semantic errors in the file exit 1 (and are reported, not fatal).
set(broken "${CMAKE_CURRENT_BINARY_DIR}/broken.scenario")
file(WRITE ${broken} "model = 13b\nphase = s9\nstraggler = 99:2\n")
expect_exit(1 ${MALLEUS_LINT} ${broken})
expect_exit(1 ${MALLEUS_LINT} --format=json ${broken})
expect_stdout_contains("scenario.unknown-model")

# Unanalyzable (missing / unparsable) files and bad usage.
expect_exit(1 ${MALLEUS_LINT} ${SCENARIO_DIR}/does-not-exist.scenario)
expect_exit(2 ${MALLEUS_LINT})
expect_exit(2 ${MALLEUS_LINT} --format=yaml ${clean_scenario})
