// Scale-out guard rails (10k-GPU scale-out PR): hierarchical planning on
// pod-structured clusters must produce valid, deterministic plans; delta
// re-planning must replay the island memo instead of re-solving the world;
// and a 1024-GPU plan must stay sub-second on one core — the property the
// whole decomposition exists to deliver.

#include <gtest/gtest.h>

#include <chrono>
#include <set>

#include "core/hier.h"
#include "core/planner.h"
#include "model/cost_model.h"
#include "obs/metrics.h"
#include "plan/estimator.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace core {
namespace {

using straggler::Situation;

topo::ClusterSpec FatTreeCluster(int nodes, int gpn, int nodes_per_pod,
                                 double oversub) {
  topo::FabricSpec f;
  f.kind = topo::FabricSpec::Kind::kFatTree;
  f.nodes_per_pod = nodes_per_pod;
  f.oversubscription = oversub;
  return topo::ClusterSpec(nodes, gpn, topo::GpuSpec(), topo::LinkSpec(), f);
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The sub-second acceptance bound holds for optimized builds; sanitizer
// instrumentation slows the solver severalfold, so scale it there rather
// than lose the timing guard in `tools/check.sh` runs entirely.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr double kTimeBoundScale = 20.0;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr double kTimeBoundScale = 20.0;
#else
constexpr double kTimeBoundScale = 1.0;
#endif
#else
constexpr double kTimeBoundScale = 1.0;
#endif

// 16 nodes x 8 GPUs in pods of 4: exactly kHierAutoMinGpus devices, so the
// hierarchical path engages automatically.
class HierPlannerTest : public ::testing::Test {
 protected:
  topo::ClusterSpec cluster_ = FatTreeCluster(16, 8, 4, 4.0);
  model::CostModel cost_{model::ModelSpec::Tiny(), topo::GpuSpec()};

  Situation SeededSituation() const {
    Situation s(cluster_.num_gpus());
    s.SetLevel(0, 3);   // Island 0.
    s.SetLevel(40, 1);  // Island 1.
    return s;
  }
};

TEST_F(HierPlannerTest, AutoEngagesAndProducesValidPlan) {
  ASSERT_EQ(ResolveIslandNodes(cluster_, PlannerOptions()), 4);
  Planner planner(cluster_, cost_);
  const Situation s = SeededSituation();
  Result<PlanResult> r = planner.Plan(s, 256);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->plan.Validate(cluster_, cost_).ok());
  // Every GPU is either active or on standby.
  std::set<topo::GpuId> seen;
  for (topo::GpuId g : r->plan.ActiveGpus()) seen.insert(g);
  for (topo::GpuId g : r->plan.standby_gpus) seen.insert(g);
  EXPECT_EQ(seen.size(), static_cast<size_t>(cluster_.num_gpus()));
  EXPECT_EQ(obs::MetricsRegistry::Global().GetGauge("planner.islands")
                ->Value(),
            4.0);
  EXPECT_GT(r->estimated_full_seconds, 0.0);
}

TEST_F(HierPlannerTest, PlansAreDeterministicAcrossPlannersAndThreads) {
  const Situation s = SeededSituation();
  Planner a(cluster_, cost_);
  Planner b(cluster_, cost_);
  PlannerOptions one;
  one.num_threads = 1;
  PlannerOptions four;
  four.num_threads = 4;
  Result<PlanResult> ra = a.Plan(s, 256, one);
  Result<PlanResult> rb = b.Plan(s, 256, four);
  ASSERT_TRUE(ra.ok()) << ra.status();
  ASSERT_TRUE(rb.ok()) << rb.status();
  EXPECT_EQ(ra->plan.Signature(), rb->plan.Signature());
  EXPECT_EQ(ra->estimated_seconds, rb->estimated_seconds);
  EXPECT_EQ(ra->estimated_full_seconds, rb->estimated_full_seconds);
  EXPECT_EQ(ra->chosen_tp, rb->chosen_tp);
}

TEST_F(HierPlannerTest, IdenticalReplanIsAllMemoHits) {
  // The counters are process-cumulative, so measure deltas.
  auto* hits = obs::MetricsRegistry::Global().GetCounter(
      "planner.island_cache_hits");
  auto* misses = obs::MetricsRegistry::Global().GetCounter(
      "planner.island_cache_misses");
  Planner planner(cluster_, cost_);
  const Situation s = SeededSituation();
  const double misses0 = misses->Value();
  ASSERT_TRUE(planner.Plan(s, 256).ok());
  const double misses_cold = misses->Value() - misses0;
  EXPECT_GT(misses_cold, 0.0);

  const double hits1 = hits->Value();
  ASSERT_TRUE(planner.Plan(s, 256).ok());
  EXPECT_GT(hits->Value(), hits1);
  // Nothing changed; nothing re-solves.
  EXPECT_EQ(misses->Value() - misses0, misses_cold);
}

TEST_F(HierPlannerTest, DeltaReplanResolvesFewerIslands) {
  auto* misses = obs::MetricsRegistry::Global().GetCounter(
      "planner.island_cache_misses");
  Planner planner(cluster_, cost_);
  Situation s = SeededSituation();
  const double misses0 = misses->Value();
  ASSERT_TRUE(planner.Plan(s, 256).ok());
  const double misses_cold = misses->Value() - misses0;
  ASSERT_GT(misses_cold, 0.0);

  // One new straggler in island 2: only that island's keys (plus micro-
  // share ripple on its equal healthy peers) can miss; the bulk replays.
  s.SetLevel(80, 2);
  const double misses1 = misses->Value();
  ASSERT_TRUE(planner.Plan(s, 256).ok());
  const double misses_delta = misses->Value() - misses1;
  EXPECT_GT(misses_delta, 0.0);
  EXPECT_LT(misses_delta, misses_cold);
}

TEST_F(HierPlannerTest, PinnedDpBelowIslandCountFallsBackToFlat) {
  // 4 islands but dp pinned to 2: one pipeline per island is impossible,
  // so the flat sweep takes over and honors the pin.
  const topo::ClusterSpec small = FatTreeCluster(4, 4, 1, 2.0);
  Planner planner(small, cost_);
  PlannerOptions opts;
  opts.dp_degree = 2;
  opts.island_nodes = 1;
  const Situation healthy(small.num_gpus());
  Result<PlanResult> r = planner.Plan(healthy, 64, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->plan.dp_degree(), 2);
}

TEST_F(HierPlannerTest, ForcedMicroBatchPinsTheSweep) {
  const topo::ClusterSpec small = topo::ClusterSpec::A800Cluster(2);
  Planner planner(small, cost_);
  PlannerOptions opts;
  opts.forced_micro_batch = 2;
  const Situation healthy(small.num_gpus());
  Result<PlanResult> r = planner.Plan(healthy, 64, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->plan.micro_batch_size, 2);
  // A non-dividing pin is an explicit infeasibility, not a crash.
  opts.forced_micro_batch = 3;
  EXPECT_FALSE(planner.Plan(healthy, 64, opts).ok());
}

TEST(ScaleTest, KiloGpuPlanIsSubSecond) {
  // The ISSUE acceptance guard: 1024 GPUs (128 nodes in pods of 4), a
  // straggler in one pod, cold planner — the hierarchical decomposition
  // must deliver the plan in under a second on one core.
  const topo::ClusterSpec cluster = FatTreeCluster(128, 8, 4, 4.0);
  const model::CostModel cost(model::ModelSpec::Tiny(), topo::GpuSpec());
  Situation s(cluster.num_gpus());
  s.SetLevel(0, 3);
  s.SetLevel(100, 1);
  Planner planner(cluster, cost);
  const auto t_cold = std::chrono::steady_clock::now();
  Result<PlanResult> r = planner.Plan(s, 2048);
  const double cold_seconds = Seconds(t_cold);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->plan.Validate(cluster, cost).ok());
  EXPECT_LT(cold_seconds, 1.0 * kTimeBoundScale);

  // Warm delta re-plan (one new straggler) replays the memo and must be
  // far cheaper than the cold solve.
  s.SetLevel(512, 2);
  const auto t_warm = std::chrono::steady_clock::now();
  Result<PlanResult> warm = planner.Plan(s, 2048);
  const double warm_seconds = Seconds(t_warm);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_LT(warm_seconds, 1.0 * kTimeBoundScale);
}

}  // namespace
}  // namespace core
}  // namespace malleus
