// Tests for src/plan: plan validation invariants, the closed-form step
// estimator, uniform-plan construction, and tuning.

#include <gtest/gtest.h>

#include "model/cost_model.h"
#include "plan/estimator.h"
#include "plan/plan.h"
#include "plan/uniform.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace plan {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  ParallelPlan MakeValidPlan() {
    UniformConfig cfg;
    cfg.dp = 2;
    cfg.tp = 4;
    cfg.pp = 4;
    cfg.micro_batch_size = 1;
    cfg.global_batch = 64;
    Result<ParallelPlan> p =
        BuildUniformPlan(cluster_, cost_, cluster_.AllGpus(), cfg);
    MALLEUS_CHECK_OK(p.status());
    return std::move(p).ValueOrDie();
  }

  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(4);
  model::CostModel cost_{model::ModelSpec::Llama32B(), topo::GpuSpec()};
};

TEST_F(PlanTest, UniformPlanValidates) {
  const ParallelPlan p = MakeValidPlan();
  EXPECT_TRUE(p.Validate(cluster_, cost_).ok());
  EXPECT_EQ(p.dp_degree(), 2);
  EXPECT_EQ(p.ActiveGpus().size(), 32u);
  for (const Pipeline& pipe : p.pipelines) {
    EXPECT_EQ(pipe.TotalLayers(), 60);
    EXPECT_EQ(pipe.num_microbatches, 32);
  }
}

TEST_F(PlanTest, ValidationCatchesLayerMismatch) {
  ParallelPlan p = MakeValidPlan();
  p.pipelines[0].stages[0].num_layers -= 1;
  EXPECT_FALSE(p.Validate(cluster_, cost_).ok());
}

TEST_F(PlanTest, ValidationCatchesDataMismatch) {
  ParallelPlan p = MakeValidPlan();
  p.pipelines[1].num_microbatches += 1;
  EXPECT_FALSE(p.Validate(cluster_, cost_).ok());
}

TEST_F(PlanTest, ValidationCatchesDuplicateGpu) {
  ParallelPlan p = MakeValidPlan();
  p.pipelines[0].stages[0].group.gpus[0] =
      p.pipelines[0].stages[1].group.gpus[0];
  EXPECT_FALSE(p.Validate(cluster_, cost_).ok());
}

TEST_F(PlanTest, ValidationCatchesCrossNodeTpGroup) {
  ParallelPlan p = MakeValidPlan();
  // Swap one GPU into a group on a different node.
  p.pipelines[0].stages[0].group.gpus[0] = 12;
  p.pipelines[0].stages[3].group.gpus.back() = 0;
  EXPECT_FALSE(p.Validate(cluster_, cost_).ok());
}

TEST_F(PlanTest, ValidationCatchesBadTpDegree) {
  ParallelPlan p = MakeValidPlan();
  p.pipelines[0].stages[0].group.gpus.pop_back();  // Size 3.
  EXPECT_FALSE(p.Validate(cluster_, cost_).ok());
}

TEST_F(PlanTest, ValidationCatchesMemoryOverflow) {
  // One stage takes all 60 layers on a single small group.
  ParallelPlan p = MakeValidPlan();
  Pipeline& pipe = p.pipelines[0];
  pipe.stages[0].num_layers = 60;
  for (size_t j = 1; j < pipe.stages.size(); ++j) {
    pipe.stages[j].num_layers = 0;
  }
  Status st = p.Validate(cluster_, cost_);
  EXPECT_TRUE(st.IsResourceExhausted()) << st;
}

TEST_F(PlanTest, SignatureDetectsChanges) {
  const ParallelPlan a = MakeValidPlan();
  ParallelPlan b = a;
  EXPECT_EQ(a.Signature(), b.Signature());
  b.pipelines[0].num_microbatches -= 1;
  b.pipelines[1].num_microbatches += 1;
  EXPECT_NE(a.Signature(), b.Signature());
  ParallelPlan c = a;
  c.activation_checkpointing = true;
  EXPECT_NE(a.Signature(), c.Signature());
}

TEST_F(PlanTest, GroupRateUsesSlowestMember) {
  const ParallelPlan p = MakeValidPlan();
  straggler::Situation s(cluster_.num_gpus());
  s.SetRate(0, 3.0);
  const TpGroup& g = p.pipelines[0].stages[0].group;
  ASSERT_EQ(g.gpus[0], 0);
  EXPECT_DOUBLE_EQ(g.Rate(cost_, s), cost_.Rho(4) * 3.0);
}

TEST_F(PlanTest, EstimatorHealthyMatchesHandComputation) {
  const ParallelPlan p = MakeValidPlan();
  const straggler::Situation healthy(cluster_.num_gpus());
  const StepEstimate est = EstimateStep(p, cost_, healthy);
  const double t_stage = cost_.Rho(4) * 15 * cost_.TauSeconds(1);
  EXPECT_NEAR(est.simplified_seconds, 32 * t_stage, 1e-9);
  EXPECT_NEAR(est.step_seconds, 31 * t_stage + 4 * t_stage, 1e-9);
  ASSERT_EQ(est.pipeline_seconds.size(), 2u);
  EXPECT_NEAR(est.pipeline_seconds[0], est.pipeline_seconds[1], 1e-9);
}

TEST_F(PlanTest, EstimatorSlowsWithStraggler) {
  const ParallelPlan p = MakeValidPlan();
  const straggler::Situation healthy(cluster_.num_gpus());
  straggler::Situation s(cluster_.num_gpus());
  s.SetLevel(0, 2);
  EXPECT_GT(EstimateStep(p, cost_, s).step_seconds,
            EstimateStep(p, cost_, healthy).step_seconds * 2.0);
}

TEST_F(PlanTest, EstimatorAcOverhead) {
  ParallelPlan p = MakeValidPlan();
  const straggler::Situation healthy(cluster_.num_gpus());
  const double base = EstimateStep(p, cost_, healthy).step_seconds;
  p.activation_checkpointing = true;
  EXPECT_NEAR(EstimateStep(p, cost_, healthy).step_seconds,
              base * cost_.config().ac_compute_overhead, 1e-9);
}

TEST_F(PlanTest, UniformBuilderRejectsBadConfigs) {
  UniformConfig cfg;
  cfg.dp = 3;
  cfg.tp = 4;
  cfg.pp = 4;  // 48 GPUs needed, 32 given.
  EXPECT_FALSE(
      BuildUniformPlan(cluster_, cost_, cluster_.AllGpus(), cfg).ok());
  cfg = UniformConfig{};
  cfg.dp = 2;
  cfg.tp = 3;  // Invalid TP degree.
  cfg.pp = 2;
  const std::vector<topo::GpuId> all = cluster_.AllGpus();
  const std::vector<topo::GpuId> twelve(all.begin(), all.begin() + 12);
  EXPECT_FALSE(BuildUniformPlan(cluster_, cost_, twelve, cfg).ok());
}

TEST_F(PlanTest, UniformBuilderUnevenLayers) {
  // 60 layers over 7 stages: remainder goes to the later stages.
  const topo::ClusterSpec big = topo::ClusterSpec::A800Cluster(7);
  UniformConfig cfg;
  cfg.dp = 2;
  cfg.tp = 4;
  cfg.pp = 7;
  cfg.global_batch = 64;
  Result<ParallelPlan> p = BuildUniformPlan(big, cost_, big.AllGpus(), cfg);
  ASSERT_TRUE(p.ok()) << p.status();
  const auto& stages = p->pipelines[0].stages;
  EXPECT_EQ(stages[0].num_layers, 8);
  EXPECT_EQ(stages.back().num_layers, 9);
  EXPECT_EQ(p->pipelines[0].TotalLayers(), 60);
}

TEST_F(PlanTest, UniformBuilderUnevenDataNeedsOptIn) {
  UniformConfig cfg;
  cfg.dp = 2;
  cfg.tp = 4;
  cfg.pp = 4;
  cfg.global_batch = 63;  // 63 micro-batches over DP 2.
  EXPECT_FALSE(
      BuildUniformPlan(cluster_, cost_, cluster_.AllGpus(), cfg).ok());
  cfg.allow_uneven_data = true;
  Result<ParallelPlan> p =
      BuildUniformPlan(cluster_, cost_, cluster_.AllGpus(), cfg);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->pipelines[0].num_microbatches +
                p->pipelines[1].num_microbatches,
            63);
}

TEST_F(PlanTest, TunedPlanIsValidAndUsesAllGpus) {
  Result<ParallelPlan> p =
      TuneUniformPlan(cluster_, cost_, cluster_.AllGpus(), 64);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_TRUE(p->Validate(cluster_, cost_).ok());
  EXPECT_EQ(p->ActiveGpus().size(), 32u);
}

TEST_F(PlanTest, TuningPrefersNoAcWhenMemoryAllows) {
  Result<ParallelPlan> p =
      TuneUniformPlan(cluster_, cost_, cluster_.AllGpus(), 64);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->activation_checkpointing);
}

TEST_F(PlanTest, TuningFallsBackToAcUnderMemoryPressure) {
  // 32B on a single node only fits with activation checkpointing.
  const topo::ClusterSpec one = topo::ClusterSpec::A800Cluster(1);
  Result<ParallelPlan> p = TuneUniformPlan(one, cost_, one.AllGpus(), 64,
                                           /*max_micro_batch=*/1,
                                           /*allow_uneven_data=*/true);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_TRUE(p->activation_checkpointing);
}

TEST_F(PlanTest, ValidationCatchesEmptyPlan) {
  ParallelPlan p;
  p.pipelines.clear();
  const Status st = p.Validate(cluster_, cost_);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "plan has no pipelines");
}

TEST_F(PlanTest, ValidationCatchesDuplicateGpuAcrossPipelines) {
  ParallelPlan p = MakeValidPlan();
  // Reuse a GPU from the *other* pipeline (same node, so only the reuse
  // check can fire, not the intra-node TP constraint).
  p.pipelines[0].stages[0].group.gpus[0] =
      p.pipelines[1].stages[0].group.gpus[0];
  const Status st = p.Validate(cluster_, cost_);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("used more than once"), std::string::npos)
      << st;
}

TEST_F(PlanTest, ValidationCatchesBatchSumMismatch) {
  // sum(m_i) * b == B must hold against B itself, not just the m_i split.
  ParallelPlan p = MakeValidPlan();
  p.global_batch = 100;  // 64 micro-batches x 1 != 100.
  const Status st = p.Validate(cluster_, cost_);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("global batch"), std::string::npos) << st;
}

TEST_F(PlanTest, ValidationCatchesNonPowerOfTwoTp) {
  for (int bad_size : {3, 5, 6, 7}) {
    ParallelPlan p = MakeValidPlan();
    std::vector<topo::GpuId>& gpus = p.pipelines[0].stages[0].group.gpus;
    // Grow/shrink the group within node 0 (GPUs 0-7; stage 1 owns 4-7).
    gpus.clear();
    for (int g = 0; g < bad_size; ++g) gpus.push_back(g);
    p.pipelines[0].stages[1].group.gpus.clear();
    p.pipelines[0].stages[1].group.gpus.push_back(7);
    const Status st = p.Validate(cluster_, cost_);
    EXPECT_FALSE(st.ok()) << "tp=" << bad_size;
  }
}

TEST_F(PlanTest, SignatureOfEmptyAndDegeneratePlans) {
  // Signature must be total: change detection runs before validation.
  ParallelPlan empty;
  empty.pipelines.clear();
  const std::string sig = empty.Signature();
  EXPECT_FALSE(sig.empty());
  EXPECT_EQ(sig, empty.Signature());  // Deterministic.

  ParallelPlan other;
  other.pipelines.clear();
  other.micro_batch_size = 2;
  EXPECT_NE(sig, other.Signature());

  // Standby-only difference is visible too.
  ParallelPlan a = MakeValidPlan();
  ParallelPlan b = a;
  b.standby_gpus.push_back(31);
  EXPECT_NE(a.Signature(), b.Signature());
}

using PlanDeathTest = PlanTest;

TEST_F(PlanDeathTest, StageMemoryRejectsBadPipelineIndex) {
  const ParallelPlan p = MakeValidPlan();
  EXPECT_DEATH(StageMemoryBytesPerGpu(p, -1, 0, cost_), "out of range");
  EXPECT_DEATH(StageMemoryBytesPerGpu(p, 2, 0, cost_), "out of range");
}

TEST_F(PlanDeathTest, StageMemoryRejectsBadStageIndex) {
  const ParallelPlan p = MakeValidPlan();
  EXPECT_DEATH(StageMemoryBytesPerGpu(p, 0, -1, cost_), "out of range");
  EXPECT_DEATH(StageMemoryBytesPerGpu(p, 0, 4, cost_), "out of range");
}

TEST_F(PlanTest, StageMemoryInRangeIsFinitePositive) {
  const ParallelPlan p = MakeValidPlan();
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 4; ++j) {
      const double bytes = StageMemoryBytesPerGpu(p, i, j, cost_);
      EXPECT_GT(bytes, 0.0) << i << "," << j;
      EXPECT_LT(bytes, static_cast<double>(cost_.gpu().UsableBytes()));
    }
  }
}

}  // namespace
}  // namespace plan
}  // namespace malleus
