// Tests for core/grouping: Theorem 1 even partitioning (cross-checked
// against brute force on random instances), Theorem 2 group splitting, and
// the power-of-two compositions of Appendix B.7.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/grouping.h"

namespace malleus {
namespace core {
namespace {

class GroupingTest : public ::testing::Test {
 protected:
  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(2);
  model::CostModel cost_{model::ModelSpec::Llama32B(), topo::GpuSpec()};
};

TEST_F(GroupingTest, HealthyEvenPartition) {
  straggler::Situation s(cluster_.num_gpus());
  GroupingOptions opts;
  opts.max_tp_degree = 4;
  Result<GroupingResult> g = GroupGpus(cluster_, cost_, s, opts);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->groups.size(), 4u);
  for (size_t i = 0; i < g->groups.size(); ++i) {
    EXPECT_EQ(g->groups[i].size(), 4);
    EXPECT_DOUBLE_EQ(g->rates[i], cost_.Rho(4));
  }
  EXPECT_TRUE(g->excluded.empty());
}

TEST_F(GroupingTest, Theorem1GroupsSimilarRatesTogether) {
  straggler::Situation s(cluster_.num_gpus());
  // Two mild stragglers on node 0 must share a group of 2 under TP 2.
  s.SetRate(1, 1.5);
  s.SetRate(6, 1.5);
  GroupingOptions opts;
  opts.max_tp_degree = 2;
  opts.enable_splitting = false;
  Result<GroupingResult> g = GroupGpus(cluster_, cost_, s, opts);
  ASSERT_TRUE(g.ok());
  for (const plan::TpGroup& group : g->groups) {
    const bool has1 = std::count(group.gpus.begin(), group.gpus.end(), 1);
    const bool has6 = std::count(group.gpus.begin(), group.gpus.end(), 6);
    EXPECT_EQ(has1, has6);  // Together or neither.
  }
}

TEST_F(GroupingTest, HeavyStragglerIsolated) {
  straggler::Situation s(cluster_.num_gpus());
  s.SetLevel(0, 8);  // Rate ~12.5.
  GroupingOptions opts;
  opts.max_tp_degree = 8;
  Result<GroupingResult> g = GroupGpus(cluster_, cost_, s, opts);
  ASSERT_TRUE(g.ok());
  for (size_t i = 0; i < g->groups.size(); ++i) {
    if (std::count(g->groups[i].gpus.begin(), g->groups[i].gpus.end(), 0)) {
      EXPECT_EQ(g->groups[i].size(), 1);
    }
  }
  // Splitting must strictly improve the Theorem 2 capacity over no split.
  GroupingOptions no_split = opts;
  no_split.enable_splitting = false;
  Result<GroupingResult> g0 = GroupGpus(cluster_, cost_, s, no_split);
  ASSERT_TRUE(g0.ok());
  EXPECT_GT(g->Capacity(), g0->Capacity());
}

TEST_F(GroupingTest, SplitThresholdRespected) {
  // Below the split threshold (rate within the noise band) the group stays
  // whole; splitting is only *considered* for genuine stragglers.
  straggler::Situation s(cluster_.num_gpus());
  s.SetRate(0, 1.04);
  GroupingOptions opts;
  opts.max_tp_degree = 8;
  Result<GroupingResult> g = GroupGpus(cluster_, cost_, s, opts);
  ASSERT_TRUE(g.ok());
  for (const plan::TpGroup& group : g->groups) {
    if (std::count(group.gpus.begin(), group.gpus.end(), 0)) {
      EXPECT_EQ(group.size(), 8);
    }
  }
}

TEST_F(GroupingTest, AdoptedSplitNeverLosesCapacity) {
  // Whatever the splitting loop decides, the Theorem 2 capacity must be at
  // least that of the unsplit Theorem 1 grouping.
  for (int level : {1, 2, 3, 8}) {
    straggler::Situation s(cluster_.num_gpus());
    s.SetLevel(0, level);
    GroupingOptions split_opts;
    split_opts.max_tp_degree = 8;
    GroupingOptions plain = split_opts;
    plain.enable_splitting = false;
    Result<GroupingResult> with = GroupGpus(cluster_, cost_, s, split_opts);
    Result<GroupingResult> without = GroupGpus(cluster_, cost_, s, plain);
    ASSERT_TRUE(with.ok());
    ASSERT_TRUE(without.ok());
    EXPECT_GE(with->Capacity(), without->Capacity() - 1e-12);
  }
}

TEST_F(GroupingTest, FailedGpusExcluded) {
  straggler::Situation s(cluster_.num_gpus());
  s.Fail(3);
  GroupingOptions opts;
  opts.max_tp_degree = 8;
  Result<GroupingResult> g = GroupGpus(cluster_, cost_, s, opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->excluded, std::vector<topo::GpuId>{3});
  int covered = 0;
  for (const plan::TpGroup& group : g->groups) {
    covered += group.size();
    EXPECT_EQ(std::count(group.gpus.begin(), group.gpus.end(), 3), 0);
  }
  EXPECT_EQ(covered, cluster_.num_gpus() - 1);
}

TEST_F(GroupingTest, AllGroupsIntraNodeAndDisjoint) {
  straggler::Situation s(cluster_.num_gpus());
  s.SetLevel(0, 3);
  s.SetLevel(9, 1);
  for (int tp : {1, 2, 4, 8}) {
    GroupingOptions opts;
    opts.max_tp_degree = tp;
    Result<GroupingResult> g = GroupGpus(cluster_, cost_, s, opts);
    ASSERT_TRUE(g.ok());
    std::set<topo::GpuId> seen;
    for (const plan::TpGroup& group : g->groups) {
      EXPECT_LE(group.size(), tp);
      for (topo::GpuId id : group.gpus) {
        EXPECT_TRUE(seen.insert(id).second);
        EXPECT_TRUE(cluster_.SameNode(id, group.gpus[0]));
      }
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(cluster_.num_gpus()));
  }
}

TEST_F(GroupingTest, RejectsInvalidOptions) {
  straggler::Situation s(cluster_.num_gpus());
  GroupingOptions opts;
  opts.max_tp_degree = 3;
  EXPECT_FALSE(GroupGpus(cluster_, cost_, s, opts).ok());
  opts.max_tp_degree = 16;
  EXPECT_FALSE(GroupGpus(cluster_, cost_, s, opts).ok());
}

TEST(PowerOfTwoCompositionTest, KnownDecompositions) {
  EXPECT_EQ(PowerOfTwoComposition(7, 8), (std::vector<int>{4, 2, 1}));
  EXPECT_EQ(PowerOfTwoComposition(3, 4), (std::vector<int>{2, 1}));
  EXPECT_EQ(PowerOfTwoComposition(1, 2), (std::vector<int>{1}));
  EXPECT_EQ(PowerOfTwoComposition(8, 8), (std::vector<int>{8}));
  EXPECT_EQ(PowerOfTwoComposition(8, 4), (std::vector<int>{4, 4}));
  EXPECT_TRUE(PowerOfTwoComposition(0, 8).empty());
}

TEST(PowerOfTwoCompositionTest, SumsAndBoundsHoldForAllInputs) {
  for (int max_size : {1, 2, 4, 8}) {
    for (int n = 0; n <= 16; ++n) {
      const std::vector<int> sizes = PowerOfTwoComposition(n, max_size);
      int total = 0;
      for (int v : sizes) {
        EXPECT_TRUE(model::IsValidTpDegree(v));
        EXPECT_LE(v, max_size);
        total += v;
      }
      EXPECT_EQ(total, n);
    }
  }
}

// Property: for equal-size groups (Theorem 1's regime), the implemented
// contiguous-descending grouping maximizes the Theorem 2 capacity over all
// brute-force partitions of a node.
TEST(GroupingPropertyTest, Theorem1MaximizesCapacityOnRandomNodes) {
  const topo::ClusterSpec cluster(1, 4);
  const model::CostModel cost(model::ModelSpec::Tiny(), topo::GpuSpec());
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    straggler::Situation s(4);
    for (int g = 0; g < 4; ++g) {
      s.SetRate(g, 1.0 + 4.0 * rng.Uniform());
    }
    GroupingOptions opts;
    opts.max_tp_degree = 2;
    opts.enable_splitting = false;
    Result<GroupingResult> got = GroupGpus(cluster, cost, s, opts);
    ASSERT_TRUE(got.ok());

    // Brute force: all 3 pairings of 4 GPUs into two pairs.
    const int pairings[3][4] = {{0, 1, 2, 3}, {0, 2, 1, 3}, {0, 3, 1, 2}};
    double best = 0.0;
    for (const auto& pairing : pairings) {
      const double cap =
          1.0 / cost.GroupRate({s.rate(pairing[0]), s.rate(pairing[1])}) +
          1.0 / cost.GroupRate({s.rate(pairing[2]), s.rate(pairing[3])});
      best = std::max(best, cap);
    }
    EXPECT_NEAR(got->Capacity(), best, 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace core
}  // namespace malleus
