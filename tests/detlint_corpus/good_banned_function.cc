// det.banned-function (negative): seeded generators and steady_clock are
// the sanctioned sources; mentioning banned names inside strings or
// comments (rand, random_device) never counts as a use.
#include <chrono>
#include <string>

#include "common/rng.h"

int PickStartIndex(uint64_t seed, int n) {
  malleus::Rng rng(seed);
  return static_cast<int>(rng.Next() % static_cast<uint64_t>(n));
}

std::chrono::steady_clock::time_point Now() {
  return std::chrono::steady_clock::now();
}

std::string Banner() { return "do not call rand() or random_device here"; }
