// det.parallel-fp-accumulation: += into a captured double from a
// ParallelFor body sums in worker-interleaving order; FP addition is not
// associative, so the low bits differ run to run.
#include "exec/thread_pool.h"

double SumCosts(malleus::exec::ThreadPool* pool,
                const std::vector<double>& costs) {
  double total = 0.0;
  malleus::exec::ParallelFor(pool, static_cast<int64_t>(costs.size()),
                             [&](int64_t i) {
                               total += costs[i];  // <-- finding
                             });
  return total;
}
