// detlint.bad-allow (negative): a well-formed allow names a real rule and
// carries a reason; it suppresses its finding and raises nothing itself.
#include <chrono>
#include <cstdint>

int64_t WallClockStamp() {
  // detlint:allow(det.banned-function run-log wall stamp, excluded from byte-compared output)
  const auto now = std::chrono::high_resolution_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}
