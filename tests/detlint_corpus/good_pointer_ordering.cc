// det.pointer-ordering (negative): keying on a stable id instead of the
// object's address keeps iteration order identical across runs. Maps of
// pointer *values* (pointer as mapped type) are fine too.
#include <map>
#include <string>

struct Gpu {
  int id = 0;
};

std::map<int, double> BuildLoadByGpuId() { return {}; }

std::map<std::string, const Gpu*> BuildGpuByName() { return {}; }
