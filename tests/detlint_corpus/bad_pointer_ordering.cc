// det.pointer-ordering: a std::map keyed on a raw pointer orders entries
// by address, which changes run to run under ASLR.
#include <map>

struct Gpu {
  int id = 0;
};

std::map<const Gpu*, double> BuildLoadByGpu() {  // <-- finding
  return {};
}
