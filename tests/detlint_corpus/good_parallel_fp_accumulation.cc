// det.parallel-fp-accumulation (negative): each worker writes its own
// slot, and the reduction happens in index order after the join — the
// deterministic pattern the planner sweep uses.
#include <vector>

#include "exec/thread_pool.h"

double SumCosts(malleus::exec::ThreadPool* pool,
                const std::vector<double>& costs) {
  const int64_t n = static_cast<int64_t>(costs.size());
  std::vector<double> slots(static_cast<size_t>(n), 0.0);
  malleus::exec::ParallelFor(pool, n,
                             [&](int64_t i) { slots[i] = costs[i]; });
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) total += slots[i];
  return total;
}
