// conc.shared-mutable-capture: pool workers race on push_back into a
// captured vector — undefined behavior, and the element order depends on
// scheduling.
#include <vector>

#include "exec/thread_pool.h"

std::vector<int64_t> CollectEven(malleus::exec::ThreadPool* pool,
                                 int64_t n) {
  std::vector<int64_t> even;
  malleus::exec::ParallelFor(pool, n, [&](int64_t i) {
    if (i % 2 == 0) {
      even.push_back(i);  // <-- finding
    }
  });
  return even;
}
