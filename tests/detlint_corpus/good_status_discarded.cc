// status.discarded (negative): captured, propagated, and explicitly
// voided results are all handled; only a bare discarding statement flags.
#include <cstdio>

#include "common/status.h"

namespace malleus {

Status FlushJournal(const char* path);

Status Checkpoint(const char* path) {
  const Status flushed = FlushJournal(path);
  if (!flushed.ok()) {
    std::fprintf(stderr, "flush: %s\n", flushed.ToString().c_str());
  }
  return FlushJournal(path);
}

void BestEffortCheckpoint(const char* path) {
  (void)FlushJournal(path);  // Deliberate: best-effort by contract.
}

}  // namespace malleus
