// conc.missing-metrics-scope: pool workers start with no thread-local
// MetricsScope, so Current() inside the body resolves to the process
// global registry and per-request metrics leak into the global aggregate.
#include "exec/thread_pool.h"
#include "obs/metrics.h"

void SweepCandidates(malleus::exec::ThreadPool* pool, int64_t n) {
  malleus::exec::ParallelFor(pool, n, [&](int64_t i) {
    auto& registry = malleus::obs::MetricsRegistry::Current();  // <-- finding
    registry.GetCounter("sweep.visited")->Add(1.0);
    (void)i;
  });
}
