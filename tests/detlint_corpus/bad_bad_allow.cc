// detlint.bad-allow: a suppression without a reason is itself a finding —
// every allow in the tree must say why its site is safe.

int StableSeed() {
  // detlint:allow(det.banned-function) <-- finding (no reason given)
  return 20260809;
}
