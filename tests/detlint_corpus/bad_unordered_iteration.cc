// det.unordered-iteration: range-for over an unordered container feeding
// output visits elements in hash-table order.
#include <string>
#include <unordered_map>

std::string DumpCounts(const std::unordered_map<std::string, int>& counts) {
  std::string out;
  for (const auto& entry : counts) {  // <-- finding
    out += entry.first;
  }
  return out;
}
