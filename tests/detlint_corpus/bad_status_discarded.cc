// status.discarded: the call statement drops a Status return, silently
// swallowing the error path.
#include "common/status.h"

namespace malleus {

Status FlushJournal(const char* path);

void Checkpoint(const char* path) {
  FlushJournal(path);  // <-- finding
}

}  // namespace malleus
