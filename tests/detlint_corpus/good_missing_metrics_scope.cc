// conc.missing-metrics-scope (negative): the caller's registry is
// captured outside the lambda and re-installed with a MetricsScope as the
// body's first statement, so Current() resolves correctly on the worker.
#include "exec/thread_pool.h"
#include "obs/metrics.h"

void SweepCandidates(malleus::exec::ThreadPool* pool, int64_t n) {
  malleus::obs::MetricsRegistry* metrics =
      &malleus::obs::MetricsRegistry::Current();
  malleus::exec::ParallelFor(pool, n, [&, metrics](int64_t i) {
    malleus::obs::MetricsScope scope(metrics);
    malleus::obs::MetricsRegistry::Current().GetCounter("sweep.visited")
        ->Add(1.0);
    (void)i;
  });
}
