// det.banned-function: rand() draws from hidden global state, so two
// runs of the same scenario diverge.
#include <cstdlib>

int PickStartIndex(int n) {
  return rand() % n;  // <-- finding
}
