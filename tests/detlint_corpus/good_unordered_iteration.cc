// det.unordered-iteration (negative): iterating a sorted snapshot of the
// unordered container — the fix the rule recommends — is not flagged, and
// neither is an annotated order-insensitive loop.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

std::string DumpCounts(const std::unordered_map<std::string, int>& counts) {
  std::vector<std::pair<std::string, int>> sorted(counts.begin(),
                                                  counts.end());
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& entry : sorted) {
    out += entry.first;
  }
  return out;
}

int TotalCount(const std::unordered_map<std::string, int>& counts) {
  int total = 0;
  // detlint:allow(det.unordered-iteration integer sum is order-insensitive)
  for (const auto& entry : counts) {
    total += entry.second;
  }
  return total;
}
