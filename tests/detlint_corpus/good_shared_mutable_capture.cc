// conc.shared-mutable-capture (negative): per-worker slots indexed by the
// loop parameter, mutex-guarded writes, and atomics are all sanctioned
// ways to get results out of a parallel body.
#include <atomic>
#include <mutex>
#include <vector>

#include "exec/thread_pool.h"

std::vector<int64_t> MarkEven(malleus::exec::ThreadPool* pool, int64_t n) {
  std::vector<int64_t> flags(static_cast<size_t>(n), 0);
  malleus::exec::ParallelFor(pool, n,
                             [&](int64_t i) { flags[i] = i % 2 == 0; });
  return flags;
}

int64_t CountEven(malleus::exec::ThreadPool* pool, int64_t n) {
  std::atomic<int64_t> count{0};
  malleus::exec::ParallelFor(pool, n, [&](int64_t i) {
    if (i % 2 == 0) count.fetch_add(1, std::memory_order_relaxed);
  });
  return count.load();
}

std::vector<int64_t> GatherEven(malleus::exec::ThreadPool* pool, int64_t n) {
  std::vector<int64_t> even;
  std::mutex mu;
  malleus::exec::ParallelFor(pool, n, [&](int64_t i) {
    if (i % 2 == 0) {
      const std::lock_guard<std::mutex> lock(mu);
      even.push_back(i);
    }
  });
  return even;
}
