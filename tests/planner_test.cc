// End-to-end planner tests on the paper's scenarios: the planner must
// reproduce Megatron-like uniform plans when there are no stragglers, and
// produce non-uniform plans that approach the theoretic optimum when
// stragglers appear (Table 3's <= 10% optimality gap, checked on the
// closed-form estimate).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/planner.h"
#include "model/cost_model.h"
#include "plan/estimator.h"
#include "straggler/situation.h"
#include "topology/cluster.h"

namespace malleus {
namespace core {
namespace {

using straggler::Situation;
using straggler::SituationId;

class PlannerScenarioTest : public ::testing::Test {
 protected:
  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(4);  // 32 GPUs
  model::CostModel cost_{model::ModelSpec::Llama32B(), topo::GpuSpec()};
  Planner planner_{cluster_, cost_};
};

TEST_F(PlannerScenarioTest, HealthyClusterGetsUniformPlan) {
  const Situation healthy(cluster_.num_gpus());
  Result<PlanResult> r = planner_.Plan(healthy, 64);
  ASSERT_TRUE(r.ok()) << r.status();
  const plan::ParallelPlan& p = r->plan;
  ASSERT_TRUE(p.Validate(cluster_, cost_).ok());
  EXPECT_TRUE(p.standby_gpus.empty());
  // All pipelines identical in shape and load.
  std::set<int> stage_counts, micro_counts;
  for (const auto& pipe : p.pipelines) {
    stage_counts.insert(pipe.num_stages());
    micro_counts.insert(static_cast<int>(pipe.num_microbatches));
    std::set<int> sizes, layers;
    for (const auto& s : pipe.stages) {
      sizes.insert(s.group.size());
      layers.insert(s.num_layers);
    }
    EXPECT_EQ(sizes.size(), 1u);
    EXPECT_EQ(layers.size(), 1u);  // 60 layers split evenly.
  }
  EXPECT_EQ(stage_counts.size(), 1u);
  EXPECT_EQ(micro_counts.size(), 1u);
}

TEST_F(PlannerScenarioTest, AllGpusUsedWhenHealthy) {
  const Situation healthy(cluster_.num_gpus());
  Result<PlanResult> r = planner_.Plan(healthy, 64);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->plan.ActiveGpus().size(),
            static_cast<size_t>(cluster_.num_gpus()));
}

// Per Table 3, Malleus' estimated slowdown should stay within ~10% of the
// theoretic optimum N / ((N - n) + sum 1/x).
void ExpectNearOptimal(const topo::ClusterSpec& cluster,
                       const model::CostModel& cost, SituationId id,
                       double tolerance) {
  Planner planner(cluster, cost);
  const Situation healthy(cluster.num_gpus());
  Result<PlanResult> base = planner.Plan(healthy, 64);
  ASSERT_TRUE(base.ok()) << base.status();

  Result<Situation> situation = Situation::Canonical(cluster, id);
  ASSERT_TRUE(situation.ok()) << situation.status();
  Result<PlanResult> r = planner.Plan(*situation, 64);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->plan.Validate(cluster, cost).ok());

  const double actual_ratio =
      r->estimated_seconds / base->estimated_seconds;
  const double optimal_ratio = situation->TheoreticSlowdown();
  // Slightly beating the "theoretic optimum" is legitimate: isolating a
  // straggler into a TP-1 group sheds TP communication overhead that the
  // formula (capability proportional to 1/x under the baseline TP layout)
  // does not credit. Large violations would mean a broken cost model.
  EXPECT_GE(actual_ratio, optimal_ratio * 0.93)
      << straggler::SituationName(id)
      << ": plan is impossibly far below the theoretic optimum";
  EXPECT_LE(actual_ratio, optimal_ratio * (1.0 + tolerance))
      << straggler::SituationName(id) << ": actual " << actual_ratio
      << " vs optimal " << optimal_ratio;
}

TEST_F(PlannerScenarioTest, S1NearOptimal) {
  ExpectNearOptimal(cluster_, cost_, SituationId::kS1, 0.15);
}

TEST_F(PlannerScenarioTest, S2NearOptimal) {
  ExpectNearOptimal(cluster_, cost_, SituationId::kS2, 0.15);
}

TEST_F(PlannerScenarioTest, S3NearOptimal) {
  ExpectNearOptimal(cluster_, cost_, SituationId::kS3, 0.15);
}

TEST_F(PlannerScenarioTest, S4NearOptimal) {
  ExpectNearOptimal(cluster_, cost_, SituationId::kS4, 0.15);
}

TEST_F(PlannerScenarioTest, S5NearOptimal) {
  ExpectNearOptimal(cluster_, cost_, SituationId::kS5, 0.25);
}

TEST_F(PlannerScenarioTest, S6NearOptimal) {
  ExpectNearOptimal(cluster_, cost_, SituationId::kS6, 0.25);
}

TEST_F(PlannerScenarioTest, HeavyStragglerIsolatedOrRemoved) {
  Situation s(cluster_.num_gpus());
  s.SetLevel(0, 8);  // Rate ~12.5: should end up isolated or on standby.
  Result<PlanResult> r = planner_.Plan(s, 64);
  ASSERT_TRUE(r.ok()) << r.status();
  // GPU 0 must not share a TP group with healthy GPUs.
  for (const auto& pipe : r->plan.pipelines) {
    for (const auto& stage : pipe.stages) {
      bool has0 = std::find(stage.group.gpus.begin(), stage.group.gpus.end(),
                            0) != stage.group.gpus.end();
      if (has0) {
        EXPECT_EQ(stage.group.size(), 1);
      }
    }
  }
}

TEST_F(PlannerScenarioTest, FailedGpuExcluded) {
  Situation s(cluster_.num_gpus());
  s.Fail(3);
  Result<PlanResult> r = planner_.Plan(s, 64);
  ASSERT_TRUE(r.ok()) << r.status();
  for (topo::GpuId g : r->plan.ActiveGpus()) EXPECT_NE(g, 3);
  EXPECT_NE(std::find(r->plan.standby_gpus.begin(),
                      r->plan.standby_gpus.end(), 3),
            r->plan.standby_gpus.end());
}

TEST_F(PlannerScenarioTest, PinnedDpDegreeHonored) {
  const Situation healthy(cluster_.num_gpus());
  PlannerOptions opts;
  opts.dp_degree = 2;
  Result<PlanResult> r = planner_.Plan(healthy, 64, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->plan.dp_degree(), 2);
}

TEST_F(PlannerScenarioTest, EstimateConsistentWithPlanEstimator) {
  Result<Situation> s = Situation::Canonical(cluster_, SituationId::kS3);
  ASSERT_TRUE(s.ok());
  Result<PlanResult> r = planner_.Plan(*s, 64);
  ASSERT_TRUE(r.ok()) << r.status();
  const plan::StepEstimate est = plan::EstimateStep(r->plan, cost_, *s);
  EXPECT_DOUBLE_EQ(r->estimated_seconds, est.simplified_seconds);
  EXPECT_DOUBLE_EQ(r->estimated_full_seconds, est.step_seconds);
}

TEST_F(PlannerScenarioTest, AblationFlagsDegradeQuality) {
  Result<Situation> s = Situation::Canonical(cluster_, SituationId::kS4);
  ASSERT_TRUE(s.ok());
  PlannerOptions full;
  Result<PlanResult> best = planner_.Plan(*s, 64, full);
  ASSERT_TRUE(best.ok()) << best.status();

  PlannerOptions data_only = full;
  data_only.nonuniform_devices = false;
  data_only.nonuniform_layers = false;
  Result<PlanResult> weak = planner_.Plan(*s, 64, data_only);
  ASSERT_TRUE(weak.ok()) << weak.status();
  EXPECT_LE(best->estimated_seconds, weak->estimated_seconds * (1 + 1e-9));
}

TEST(PlannerLargeTest, Llama70BOn64Gpus) {
  const topo::ClusterSpec cluster = topo::ClusterSpec::A800Cluster(8);
  const model::CostModel cost(model::ModelSpec::Llama70B(), topo::GpuSpec());
  Planner planner(cluster, cost);
  Result<Situation> s = Situation::Canonical(cluster, SituationId::kS4);
  ASSERT_TRUE(s.ok());
  Result<PlanResult> r = planner.Plan(*s, 64);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->plan.Validate(cluster, cost).ok());
  // The 70B model cannot fit on TP=1 stages; planning must still succeed
  // and keep the stragglers from dominating.
  const Situation healthy(cluster.num_gpus());
  Result<PlanResult> base = planner.Plan(healthy, 64);
  ASSERT_TRUE(base.ok()) << base.status();
  EXPECT_LE(r->estimated_seconds / base->estimated_seconds, 1.4);
}

}  // namespace
}  // namespace core
}  // namespace malleus
