// Tests for core/checkpoint: sharded save/load volume accounting and the
// node-parallel I/O time model.

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "plan/uniform.h"

namespace malleus {
namespace core {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  plan::ParallelPlan Uniform(int dp, int tp, int pp) {
    plan::UniformConfig cfg;
    cfg.dp = dp;
    cfg.tp = tp;
    cfg.pp = pp;
    cfg.global_batch = 64;
    std::vector<topo::GpuId> all = cluster_.AllGpus();
    std::vector<topo::GpuId> gpus(all.begin(), all.begin() + dp * tp * pp);
    Result<plan::ParallelPlan> p =
        plan::BuildUniformPlan(cluster_, cost_, gpus, cfg);
    MALLEUS_CHECK_OK(p.status());
    return std::move(p).ValueOrDie();
  }

  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(4);
  model::CostModel cost_{model::ModelSpec::Llama32B(), topo::GpuSpec()};
};

TEST_F(CheckpointTest, SaveVolumeIsWeightsPlusOptimizer) {
  const plan::ParallelPlan p = Uniform(2, 4, 4);
  Result<CheckpointIoPlan> save = PlanCheckpointSave(p, cost_);
  ASSERT_TRUE(save.ok()) << save.status();
  // One copy of bf16 weights + the full fp32 optimizer, for all layers
  // (embedding/head states excluded from the per-layer model).
  const double layers = cost_.spec().num_layers *
                        static_cast<double>(cost_.spec().ParamsPerLayer());
  const double expected =
      layers * (2.0 + cost_.config().sharded_bytes_per_param);
  EXPECT_NEAR(save->total_bytes, expected, expected * 1e-9);
}

TEST_F(CheckpointTest, LoadVolumeCountsEveryReplica) {
  const plan::ParallelPlan p = Uniform(2, 4, 4);
  Result<CheckpointIoPlan> save = PlanCheckpointSave(p, cost_);
  Result<CheckpointIoPlan> load = PlanCheckpointLoad(p, cost_);
  ASSERT_TRUE(save.ok());
  ASSERT_TRUE(load.ok());
  // Load reads weights once per replica: dp copies vs save's single copy.
  const double layers = cost_.spec().num_layers *
                        static_cast<double>(cost_.spec().ParamsPerLayer());
  EXPECT_NEAR(load->total_bytes - save->total_bytes, layers * 2.0,
              layers * 2.0 * 1e-9);
}

TEST_F(CheckpointTest, SaveSpreadsAcrossGpus) {
  const plan::ParallelPlan p = Uniform(2, 4, 4);
  Result<CheckpointIoPlan> save = PlanCheckpointSave(p, cost_);
  ASSERT_TRUE(save.ok());
  // Replica 0 writes all weights; optimizer shards alternate replicas, so
  // at least three quarters of the fleet participates.
  EXPECT_GE(save->bytes_per_gpu.size(), 24u);
  double max_share = 0.0;
  for (const auto& [gpu, bytes] : save->bytes_per_gpu) {
    max_share = std::max(max_share, bytes / save->total_bytes);
  }
  EXPECT_LT(max_share, 0.12);  // No single hotspot.
}

TEST_F(CheckpointTest, IoSecondsBottleneckedByBusiestNode) {
  CheckpointIoPlan io;
  io.bytes_per_gpu[0] = 10e9;  // Node 0.
  io.bytes_per_gpu[1] = 10e9;  // Node 0.
  io.bytes_per_gpu[8] = 4e9;   // Node 1.
  io.total_bytes = 24e9;
  CheckpointIoConfig cfg;
  cfg.per_node_io_gbps = 2.0;
  EXPECT_NEAR(CheckpointIoSeconds(io, cluster_, cfg), 20e9 / 2e9, 1e-9);
}

TEST_F(CheckpointTest, MoreNodesLoadFaster) {
  const plan::ParallelPlan wide = Uniform(2, 4, 4);   // 4 nodes.
  const plan::ParallelPlan narrow = Uniform(2, 4, 2);  // 2 nodes.
  Result<CheckpointIoPlan> lw = PlanCheckpointLoad(wide, cost_);
  Result<CheckpointIoPlan> ln = PlanCheckpointLoad(narrow, cost_);
  ASSERT_TRUE(lw.ok());
  ASSERT_TRUE(ln.ok());
  EXPECT_LT(CheckpointIoSeconds(*lw, cluster_),
            CheckpointIoSeconds(*ln, cluster_));
}

}  // namespace
}  // namespace core
}  // namespace malleus
