// Tests for core/orchestration: Theorem 3 stage ordering, bundle
// permutation search, zero-layer group removal, and the Eq. (4) division
// integration (fast-majority election, feasibility, uniform mode).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/rng.h"
#include "core/orchestration.h"
#include "core/work_assignment.h"

namespace malleus {
namespace core {
namespace {

class OrchestrationTest : public ::testing::Test {
 protected:
  // A hand-built grouping: TP-4 groups with given slowest-member rates.
  // (TP-4 at DP >= 1 leaves enough memory for full 32B pipelines; the
  // orchestration layer itself never inspects GPU ids, only sizes/rates.)
  GroupingResult MakeGrouping(const std::vector<double>& gpu_rate_per_group) {
    GroupingResult g;
    int next = 0;
    for (double rate : gpu_rate_per_group) {
      plan::TpGroup group;
      group.gpus = {next, next + 1, next + 2, next + 3};
      next += 4;
      g.groups.push_back(group);
      g.rates.push_back(cost_.GroupRate({rate, 1.0, 1.0, 1.0}));
    }
    return g;
  }

  topo::ClusterSpec cluster_ = topo::ClusterSpec::A800Cluster(2);
  model::CostModel cost_{model::ModelSpec::Llama32B(), topo::GpuSpec()};
};

TEST_F(OrchestrationTest, Theorem3OrdersByDescendingRate) {
  GroupingResult g = MakeGrouping({1.0, 2.5, 1.0, 1.8});
  Result<OrchestratedPipeline> pipe = OrderAndAssignLayers(
      {0, 1, 2, 3}, g, cost_, /*micro_batch=*/1, /*dp=*/1,
      /*nonuniform_layers=*/true, nullptr);
  ASSERT_TRUE(pipe.ok()) << pipe.status();
  ASSERT_EQ(pipe->group_indices.size(), 4u);
  for (size_t j = 0; j + 1 < pipe->group_indices.size(); ++j) {
    EXPECT_GE(g.rates[pipe->group_indices[j]],
              g.rates[pipe->group_indices[j + 1]])
        << "stages must be in descending straggling-rate order";
  }
}

TEST_F(OrchestrationTest, LayersSumToModel) {
  GroupingResult g = MakeGrouping({1.0, 2.0, 1.0, 1.0});
  Result<OrchestratedPipeline> pipe = OrderAndAssignLayers(
      {0, 1, 2, 3}, g, cost_, 1, 1, true, nullptr);
  ASSERT_TRUE(pipe.ok());
  EXPECT_EQ(std::accumulate(pipe->layers.begin(), pipe->layers.end(), 0),
            cost_.spec().num_layers);
  for (int l : pipe->layers) EXPECT_GT(l, 0);
}

TEST_F(OrchestrationTest, HopelessGroupRemovedToStandby) {
  GroupingResult g = MakeGrouping({60.0, 1.0, 1.0, 1.0});
  std::vector<int> removed;
  Result<OrchestratedPipeline> pipe = OrderAndAssignLayers(
      {0, 1, 2, 3}, g, cost_, 1, 1, true, &removed);
  ASSERT_TRUE(pipe.ok()) << pipe.status();
  EXPECT_EQ(removed, std::vector<int>{0});
  EXPECT_EQ(pipe->group_indices.size(), 3u);
  EXPECT_EQ(std::accumulate(pipe->layers.begin(), pipe->layers.end(), 0),
            cost_.spec().num_layers);
}

TEST_F(OrchestrationTest, MixedSizesEnumeratesBundleOrders) {
  // Groups of sizes 1, 2 and 4 with equal per-GPU health: the ordering
  // search must produce a feasible min-bottleneck order without crashing,
  // bundling equal sizes together.
  GroupingResult g;
  g.groups.push_back({{0}});
  g.groups.push_back({{1, 2}});
  g.groups.push_back({{4, 5, 6, 7}});
  g.rates = {1.0, cost_.GroupRate({1.0, 1.0}),
             cost_.GroupRate({1.0, 1.0, 1.0, 1.0})};
  Result<OrchestratedPipeline> pipe =
      OrderAndAssignLayers({0, 1, 2}, g, cost_, 1, /*dp_degree=*/2, true,
                           nullptr);
  ASSERT_TRUE(pipe.ok()) << pipe.status();
  // The fastest (largest) group should carry the most layers.
  int idx_of_4 = -1;
  for (size_t j = 0; j < pipe->group_indices.size(); ++j) {
    if (g.groups[pipe->group_indices[j]].size() == 4) {
      idx_of_4 = static_cast<int>(j);
    }
  }
  ASSERT_GE(idx_of_4, 0);
  EXPECT_EQ(*std::max_element(pipe->layers.begin(), pipe->layers.end()),
            pipe->layers[idx_of_4]);
}

TEST_F(OrchestrationTest, DivisionSpreadsSlowGroupsAcrossPipelines) {
  // 8 groups, two slow; DP = 2: the two slow groups should not both land in
  // the same pipeline (that would double one pipeline's handicap).
  GroupingResult g = MakeGrouping(
      {2.5, 1.0, 1.0, 1.0, 2.5, 1.0, 1.0, 1.0});
  OrchestrationOptions opts;
  Result<OrchestrationResult> r =
      Orchestrate(g, cost_, 1, 2, 64, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->pipelines.size(), 2u);
  auto slow_count = [&](const OrchestratedPipeline& p) {
    int n = 0;
    for (int gi : p.group_indices) {
      if (gi == 0 || gi == 4) ++n;
    }
    return n;
  };
  EXPECT_EQ(slow_count(r->pipelines[0]), 1);
  EXPECT_EQ(slow_count(r->pipelines[1]), 1);
  EXPECT_TRUE(r->division_exact);
}

TEST_F(OrchestrationTest, UniformModeDealsGroupsEvenly) {
  GroupingResult g = MakeGrouping(
      {2.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  OrchestrationOptions opts;
  opts.nonuniform_stages = false;
  Result<OrchestrationResult> r = Orchestrate(g, cost_, 1, 2, 64, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->pipelines[0].group_indices.size(), 4u);
  EXPECT_EQ(r->pipelines[1].group_indices.size(), 4u);
}

TEST_F(OrchestrationTest, UniformModeRequiresDivisibility) {
  GroupingResult g = MakeGrouping({1.0, 1.0, 1.0, 1.0, 1.0});
  OrchestrationOptions opts;
  opts.nonuniform_stages = false;
  EXPECT_FALSE(Orchestrate(g, cost_, 1, 2, 64, opts).ok());
}

TEST_F(OrchestrationTest, RejectsImpossibleShapes) {
  GroupingResult g = MakeGrouping({1.0, 1.0});
  OrchestrationOptions opts;
  EXPECT_FALSE(Orchestrate(g, cost_, 1, 3, 64, opts).ok());  // dp > groups.
  EXPECT_FALSE(Orchestrate(g, cost_, 1, 2, 1, opts).ok());   // micro < dp.
  EXPECT_FALSE(Orchestrate(g, cost_, 1, 0, 64, opts).ok());
}

TEST_F(OrchestrationTest, EveryGroupPlacedOrRemoved) {
  GroupingResult g = MakeGrouping(
      {3.8, 2.6, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  OrchestrationOptions opts;
  Result<OrchestrationResult> r = Orchestrate(g, cost_, 1, 2, 64, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  std::vector<int> seen;
  for (const auto& p : r->pipelines) {
    seen.insert(seen.end(), p.group_indices.begin(), p.group_indices.end());
  }
  seen.insert(seen.end(), r->removed_groups.begin(),
              r->removed_groups.end());
  std::sort(seen.begin(), seen.end());
  std::vector<int> expected(g.groups.size());
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(seen, expected);
}

// Differential: the bundle-permutation + Theorem-3 ordering search (with
// its SolveCache memoization) must find the same optimal bottleneck as a
// brute-force next_permutation sweep over EVERY stage order, each solved
// with a fresh Eq. (2) call. 50 seeded random size-multisets cover mixed
// {1,2,4} bundles. When the search drops hopeless groups to standby, the
// optimality claim applies to the kept set (the drop re-solves with fewer
// stages, which changes the memory coefficients), so the sweep runs over
// exactly the groups the search kept.
TEST(OrchestrationDifferentialTest, MatchesBruteForcePermutationSweep) {
  const model::CostModel cost(model::ModelSpec::Tiny(), topo::GpuSpec());
  Rng rng(20260807);
  for (int trial = 0; trial < 50; ++trial) {
    GroupingResult g;
    const int num_groups = static_cast<int>(rng.UniformInt(2, 5));
    int next_gpu = 0;
    std::vector<int> indices;
    for (int i = 0; i < num_groups; ++i) {
      const int size = 1 << rng.UniformInt(0, 2);  // 1, 2 or 4.
      plan::TpGroup group;
      for (int k = 0; k < size; ++k) group.gpus.push_back(next_gpu++);
      std::vector<double> member_rates(size, 1.0);
      member_rates[0] = rng.Uniform(1.0, 3.0);
      g.groups.push_back(group);
      g.rates.push_back(cost.GroupRate(member_rates));
      indices.push_back(i);
    }

    solver::SolveCache cache;
    std::vector<int> removed;
    Result<OrchestratedPipeline> orchestrated = OrderAndAssignLayers(
        indices, g, cost, /*micro_batch=*/1, /*dp_degree=*/1,
        /*nonuniform_layers=*/true, &removed, &cache);
    ASSERT_TRUE(orchestrated.ok())
        << "trial " << trial << ": " << orchestrated.status();
    ASSERT_EQ(orchestrated->group_indices.size() + removed.size(),
              indices.size())
        << "trial " << trial;

    // Cached and uncached orchestration must agree exactly.
    Result<OrchestratedPipeline> uncached = OrderAndAssignLayers(
        indices, g, cost, 1, 1, true, nullptr, nullptr);
    ASSERT_TRUE(uncached.ok()) << uncached.status();
    EXPECT_EQ(orchestrated->group_indices, uncached->group_indices)
        << "trial " << trial;
    EXPECT_EQ(orchestrated->bottleneck, uncached->bottleneck)
        << "trial " << trial;

    // Brute force: every order of the kept groups, solved directly.
    std::vector<int> perm = orchestrated->group_indices;
    std::sort(perm.begin(), perm.end());
    double best = std::numeric_limits<double>::infinity();
    do {
      std::vector<double> rates;
      std::vector<int> sizes;
      for (int idx : perm) {
        rates.push_back(g.rates[idx]);
        sizes.push_back(g.groups[idx].size());
      }
      Result<LayerAssignment> assigned =
          AssignLayers(rates, sizes, /*micro_batch=*/1, /*dp_degree=*/1,
                       cost, /*nonuniform=*/true);
      if (assigned.ok()) best = std::min(best, assigned->bottleneck);
    } while (std::next_permutation(perm.begin(), perm.end()));

    ASSERT_TRUE(std::isfinite(best)) << "trial " << trial;
    EXPECT_DOUBLE_EQ(orchestrated->bottleneck, best)
        << "trial " << trial << ": ordering search missed the optimum";
  }
}

}  // namespace
}  // namespace core
}  // namespace malleus
